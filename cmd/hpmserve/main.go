// Command hpmserve runs the moving-objects prediction service: a JSON HTTP
// API over a fleet of per-object Hybrid Prediction Models.
//
//	hpmserve -addr :8080 -period 300 -data-dir /var/lib/hpm
//
//	curl -XPOST localhost:8080/objects/bus-7/observe \
//	     -d '{"points": [[120.5, 88.2], [121.0, 90.1]]}'
//	curl -XPOST localhost:8080/observe \
//	     -d '[{"id": "bus-7", "points": [[120.5, 88.2]]}, {"id": "bus-8", "points": [[4.2, 9.9]]}]'
//	curl 'localhost:8080/objects/bus-7/predict?horizon=30&k=3'
//	curl 'localhost:8080/objects/bus-7/trajectory?from=900&to=950'
//	curl  localhost:8080/objects
//	curl  localhost:8080/metrics
//	curl  localhost:8080/readyz
//
// With -fleet-index, the store maintains a spatial index over every
// object's predicted positions, adding fleet-wide predictive queries:
//
//	curl 'localhost:8080/query/range?minx=0&miny=0&maxx=500&maxy=500&horizon=30'
//	curl 'localhost:8080/query/knn?x=120&y=88&k=5&horizon=30'
//	curl -N 'localhost:8080/subscribe?minx=0&miny=0&maxx=500&maxy=500&horizon=30&interval_ms=1000'
//
// With -data-dir, the store is durable: every acknowledged observation is
// written to a write-ahead log before the HTTP response goes out, atomic
// snapshots are taken every -snapshot-every (and on shutdown), and a
// restart — graceful or a crash — replays snapshot + WAL tail, losing
// nothing acknowledged.
//
// The legacy -snapshot flag keeps the old lighter mode: restore from a
// single snapshot file at startup and save it on SIGINT/SIGTERM only (a
// crash loses everything since the last graceful shutdown).
//
// The server degrades instead of collapsing: -max-inflight bounds
// concurrent requests (reads outrank writes outrank control work under
// -shed-policy priority; overflow is answered 429/503 + Retry-After),
// -request-timeout deadlines every request, -max-subscribers caps live
// SSE streams, and a durable store that loses its disk (-degrade-after
// consecutive WAL fsync failures, or any ENOSPC/torn write) flips
// read-only — serving queries from memory, 503ing writes — and probes the
// disk every -probe-interval (doubling) until it can recover on its own.
// /readyz reports 503 while degraded so load balancers route writes away;
// /healthz stays 200 because restarting the process would not fix the
// disk.
//
// -pprof 127.0.0.1:6060 serves net/http/pprof on a second, loopback-only
// mux so ingest and query hotspots can be profiled in place without
// exposing profiles on the API address.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hpm"
	"hpm/internal/faultinject"
	"hpm/internal/spatial"
	"hpm/serve"
	"hpm/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		period   = flag.Int("period", 300, "pattern period T (samples per day/cycle)")
		minDays  = flag.Int("min-train", store.DefaultMinTrainPeriods, "periods before first training")
		retrain  = flag.Int("retrain-every", 0, "full retrain after this many new periods (0 = extends only)")
		eps      = flag.Float64("eps", 0, "DBSCAN Eps (0 = paper default 30)")
		minPts   = flag.Int("minpts", 0, "DBSCAN MinPts (0 = paper default 4)")
		distant  = flag.Int("distant", 0, "distant-time threshold d (0 = paper default 60)")
		workers  = flag.Int("parallelism", 0, "worker goroutines per model train (0 = NumCPU; any value trains identical models)")
		snapshot = flag.String("snapshot", "", "legacy fleet snapshot file: restored at start, saved on graceful shutdown only")
		dataDir  = flag.String("data-dir", "", "durable store directory (WAL + snapshots); crash-safe, supersedes -snapshot")
		snapEach = flag.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval with -data-dir (0 = shutdown only)")
		compact  = flag.Int("compact-every", 0, "force a full snapshot rewrite every Nth checkpoint; between them only shards dirtied since the last checkpoint are rewritten (0 = never force)")
		persistW = flag.Int("persist-workers", 0, "worker goroutines for checkpoint writes and recovery (segment load, WAL replay); 0 = GOMAXPROCS, 1 = serial")
		walSync  = flag.Bool("wal-sync", true, "fsync the WAL on every observe; disable to trade crash durability for ingest throughput")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); empty disables")
		evalOff  = flag.Bool("eval-off", false, "disable online prediction-quality evaluation (/metrics eval series stay zero)")
		evalHit  = flag.Float64("eval-hit-distance", 0, "distance within which a scored prediction counts as a hit (0 = default 30)")
		evalRing = flag.Int("eval-ring", 0, "outstanding predictions kept per object awaiting truth (0 = default 64)")
		drift    = flag.Float64("drift-threshold", 0, "mean-error EWMA above which an early retrain fires (0 = drift retraining off)")
		adaptive = flag.Bool("adaptive-routing", false, "route each query to whichever path — pattern, markov or motion fallback — measurably leads at its horizon")

		markovOrder = flag.Int("markov-order", 0, "max context length of the Markov next-region predictor (0 = default 3, negative = disable the markov path)")
		markovMin   = flag.Int("markov-min-count", 0, "observations a region transition needs before the markov path will use it (0 = default 2)")

		fleetIndex = flag.Bool("fleet-index", false, "maintain the fleet spatial index: enables /query/range, /query/knn and /subscribe")
		indexCell  = flag.Float64("index-cell", 50, "fleet-index grid cell size in world units")
		indexStale = flag.Duration("index-staleness", 0, "hide indexed objects not observed within this window (0 = never)")
		indexTick  = flag.Float64("index-tick-hz", 0, "ticks per wall-clock second for aging indexed positions between observes (0 = aging off, exact answers)")
		indexSpeed = flag.Float64("index-max-speed", 0, "per-tick speed clamp for aging drift (0 = half a cell per tick)")

		maxInflight = flag.Int("max-inflight", 256, "concurrently executing requests; overflow past a bounded wait queue is shed with 429 + Retry-After (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline, threaded into the store so expired work is abandoned (0 = none)")
		shedPolicy  = flag.String("shed-policy", "priority", "admission policy under load: priority (reads outrank writes outrank control) or fair (one shared limit)")
		maxSubs     = flag.Int("max-subscribers", serve.DefaultMaxSubscribers, "concurrent SSE /subscribe streams; when full, the client most behind on its write deadline is evicted first (negative = unlimited)")
		degrade     = flag.Int("degrade-after", store.DefaultDegradeAfter, "consecutive WAL fsync failures before the store flips degraded read-only (torn writes and ENOSPC flip it immediately)")
		probeEvery  = flag.Duration("probe-interval", store.DefaultProbeInterval, "initial delay between disk-recovery probes while degraded; doubles up to 15s")
		faultSpec   = flag.String("fault", "", "inject a fault for testing, as op:n — fail the first n hits of that fault point (e.g. wal-sync-error:5); see internal/faultinject")
	)
	flag.Parse()
	if *shedPolicy != "priority" && *shedPolicy != "fair" {
		log.Fatalf("hpmserve: -shed-policy %q: want priority or fair", *shedPolicy)
	}
	faultHook, err := parseFault(*faultSpec)
	if err != nil {
		log.Fatalf("hpmserve: -fault %q: %v", *faultSpec, err)
	}

	if *pprofAt != "" {
		go servePprof(*pprofAt)
	}

	opts := store.Options{
		Config: hpm.Config{
			Period:           *period,
			Eps:              *eps,
			MinPts:           *minPts,
			DistantThreshold: *distant,
			Parallelism:      *workers,
			MarkovOrder:      *markovOrder,
			MarkovMinCount:   *markovMin,
		},
		MinTrainPeriods: *minDays,
		RetrainEvery:    *retrain,
		WALNoSync:       !*walSync,
		CompactEvery:    *compact,
		PersistWorkers:  *persistW,
		EvalDisabled:    *evalOff,
		DriftThreshold:  *drift,
		AdaptiveRouting: *adaptive,
		DegradeAfter:    *degrade,
		ProbeInterval:   *probeEvery,
	}
	opts.Eval.HitDistance = *evalHit
	opts.Eval.RingSize = *evalRing
	if *fleetIndex {
		opts.FleetIndex = &spatial.Config{
			CellSize:  *indexCell,
			Staleness: *indexStale,
			TickHz:    *indexTick,
			MaxSpeed:  *indexSpeed,
		}
	}
	st, err := openStore(*dataDir, *snapshot, opts)
	if err != nil {
		log.Fatal(err)
	}
	if faultHook != nil {
		log.Printf("hpmserve: fault injection active (-fault %s) — testing only", *faultSpec)
		st.SetFaultHook(faultHook)
	}
	if *dataDir != "" && *snapEach > 0 {
		go snapshotLoop(st, *snapEach)
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: serve.NewHandler(st, serve.Limits{
			MaxInflight:    *maxInflight,
			RequestTimeout: *reqTimeout,
			ShedPolicy:     *shedPolicy,
			MaxSubscribers: *maxSubs,
			FaultHook:      faultHook,
		}),
		// A slow or hostile client must not pin a connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go shutdownOnSignal(srv, st, *snapshot)
	fmt.Printf("hpmserve listening on %s (period %d, first train after %d periods)\n",
		*addr, *period, *minDays)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// parseFault turns an op:n spec into a FailN hook: the first n hits of
// that fault point fail, then the disk "heals" — which is exactly the
// shape a degradation smoke test wants (degrade, observe the read-only
// window, watch the probe recover). disk-full faults carry ENOSPC so the
// store's immediate-degrade path is the one exercised.
func parseFault(spec string) (faultinject.Hook, error) {
	if spec == "" {
		return nil, nil
	}
	opName, nstr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, errors.New("want op:n")
	}
	n, err := strconv.ParseInt(nstr, 10, 64)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("bad count %q: want a positive integer", nstr)
	}
	op := faultinject.Op(opName)
	var cause error
	if op == faultinject.OpDiskFull {
		cause = syscall.ENOSPC
	}
	return faultinject.FailN(op, n, cause), nil
}

// openStore picks the persistence mode: durable (WAL + snapshots) with
// -data-dir, legacy single-file restore with -snapshot, in-memory
// otherwise.
func openStore(dataDir, snapshot string, opts store.Options) (*store.Store, error) {
	if dataDir != "" {
		st, err := store.Open(dataDir, opts)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", dataDir, err)
		}
		h := st.Health()
		fmt.Printf("durable store %s: %d objects (snapshot restored: %v, wal records replayed: %d)\n",
			dataDir, h.Objects, h.SnapshotRestored, h.WALReplayed)
		return st, nil
	}
	if snapshot != "" {
		switch _, err := os.Stat(snapshot); {
		case err == nil:
			st, err := store.LoadFile(snapshot)
			if err != nil {
				return nil, fmt.Errorf("restore: %w", err)
			}
			fmt.Printf("restored %d objects from %s\n", len(st.Objects()), snapshot)
			return st, nil
		case !os.IsNotExist(err):
			return nil, err
		}
	}
	return store.New(opts)
}

// servePprof exposes the runtime profiler on its own mux, never the API
// server's: profiles leak heap contents and must not ride the public
// listen address. Only loopback addresses are accepted, so a stray
// -pprof 0.0.0.0:6060 is refused rather than silently exposed.
func servePprof(addr string) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		log.Printf("hpmserve: -pprof %q: %v", addr, err)
		return
	}
	if host != "localhost" && !net.ParseIP(host).IsLoopback() {
		log.Printf("hpmserve: -pprof %q refused: profiling binds loopback addresses only", addr)
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Printf("pprof listening on %s (CPU: /debug/pprof/profile, heap: /debug/pprof/heap)\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("hpmserve: pprof: %v", err)
	}
}

// snapshotLoop checkpoints the durable store on a fixed cadence so the
// WAL stays short and restart replay stays fast. Checkpoint failures keep
// every WAL segment, so they cost recovery time, not data.
func snapshotLoop(st *store.Store, every time.Duration) {
	for range time.Tick(every) {
		if err := st.Checkpoint(); err != nil {
			log.Printf("hpmserve: periodic snapshot: %v", err)
		}
	}
}

// shutdownOnSignal drains background trains when the process is
// interrupted, persists the fleet (final checkpoint for durable stores,
// legacy snapshot file otherwise), then stops the server.
func shutdownOnSignal(srv *http.Server, st *store.Store, snapshot string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	// Close drains in-flight trains so the snapshot captures the freshest
	// models, then checkpoints durable stores.
	if err := st.Close(); err != nil {
		log.Printf("hpmserve: shutdown: %v", err)
	}
	if snapshot != "" {
		if err := st.SaveFile(snapshot); err != nil {
			log.Printf("hpmserve: snapshot save failed: %v", err)
		} else {
			fmt.Printf("\nsnapshot saved to %s\n", snapshot)
		}
	}
	srv.Close()
}
