// Command hpmserve runs the moving-objects prediction service: a JSON HTTP
// API over a fleet of per-object Hybrid Prediction Models.
//
//	hpmserve -addr :8080 -period 300 -snapshot fleet.hpms
//
//	curl -XPOST localhost:8080/objects/bus-7/observe \
//	     -d '{"points": [[120.5, 88.2], [121.0, 90.1]]}'
//	curl 'localhost:8080/objects/bus-7/predict?horizon=30&k=3'
//	curl 'localhost:8080/objects/bus-7/trajectory?from=900&to=950'
//	curl  localhost:8080/objects
//
// With -snapshot, the fleet is restored from the file at startup (when it
// exists) and written back on SIGINT/SIGTERM, so a restart does not
// re-mine every object.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"hpm"
	"hpm/serve"
	"hpm/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		period   = flag.Int("period", 300, "pattern period T (samples per day/cycle)")
		minDays  = flag.Int("min-train", store.DefaultMinTrainPeriods, "periods before first training")
		retrain  = flag.Int("retrain-every", 0, "full retrain after this many new periods (0 = extends only)")
		eps      = flag.Float64("eps", 0, "DBSCAN Eps (0 = paper default 30)")
		minPts   = flag.Int("minpts", 0, "DBSCAN MinPts (0 = paper default 4)")
		distant  = flag.Int("distant", 0, "distant-time threshold d (0 = paper default 60)")
		workers  = flag.Int("parallelism", 0, "worker goroutines per model train (0 = NumCPU; any value trains identical models)")
		snapshot = flag.String("snapshot", "", "fleet snapshot file: restored at start, saved on shutdown")
	)
	flag.Parse()

	st, err := openStore(*snapshot, store.Options{
		Config: hpm.Config{
			Period:           *period,
			Eps:              *eps,
			MinPts:           *minPts,
			DistantThreshold: *distant,
			Parallelism:      *workers,
		},
		MinTrainPeriods: *minDays,
		RetrainEvery:    *retrain,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.Handler(st)}
	go shutdownOnSignal(srv, st, *snapshot)
	fmt.Printf("hpmserve listening on %s (period %d, first train after %d periods)\n",
		*addr, *period, *minDays)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// openStore restores the fleet from the snapshot when one exists,
// otherwise starts empty.
func openStore(path string, opts store.Options) (*store.Store, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			st, err := store.Load(f)
			if err != nil {
				return nil, fmt.Errorf("restore %s: %w", path, err)
			}
			fmt.Printf("restored %d objects from %s\n", len(st.Objects()), path)
			return st, nil
		case !os.IsNotExist(err):
			return nil, err
		}
	}
	return store.New(opts)
}

// shutdownOnSignal drains background trains when the process is
// interrupted, writes the snapshot (when configured), then stops the
// server.
func shutdownOnSignal(srv *http.Server, st *store.Store, path string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	// Drain in-flight trains so the snapshot captures the freshest models
	// and no trainer goroutine outlives the save.
	if err := st.Close(); err != nil {
		log.Printf("hpmserve: background training: %v", err)
	}
	if path != "" {
		saveSnapshot(st, path)
	}
	srv.Close()
}

// saveSnapshot writes the fleet atomically via a temp file rename.
func saveSnapshot(st *store.Store, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err == nil {
		if err = st.Save(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err == nil {
			err = os.Rename(tmp, path)
		}
	}
	if err != nil {
		log.Printf("hpmserve: snapshot save failed: %v", err)
	} else {
		fmt.Printf("\nsnapshot saved to %s\n", path)
	}
}
