// Command hpmquery trains a Hybrid Prediction Model over a CSV trajectory
// and answers predictive queries from the command line.
//
// Usage:
//
//	hpmgen -dataset Car -out car.csv
//	hpmquery -data car.csv -period 300 -stats
//	hpmquery -data car.csv -period 300 -tc 59040 -tq 59100 -k 3
//
// The query's recent movements are the -recent samples of the trajectory
// ending at -tc; the actual location at -tq (when the trajectory covers
// it) is printed alongside for comparison.
//
// Two subcommands query a running hpmserve (started with -fleet-index)
// across the whole fleet instead of training locally:
//
//	hpmquery range -addr localhost:8080 -minx 0 -miny 0 -maxx 500 -maxy 500 -horizon 30
//	hpmquery knn   -addr localhost:8080 -x 120 -y 88 -k 5 -horizon 30
package main

import (
	"flag"
	"fmt"
	"os"

	"hpm"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "range":
			runRange(os.Args[2:])
			return
		case "knn":
			runKNN(os.Args[2:])
			return
		}
	}
	runLocal()
}

func runLocal() {
	var (
		data    = flag.String("data", "", "trajectory CSV file (t,x,y per row)")
		period  = flag.Int("period", 300, "pattern period T (0 = auto-detect)")
		train   = flag.Int("train", 0, "sub-trajectories to mine (0 = all)")
		eps     = flag.Float64("eps", 0, "DBSCAN Eps (0 = paper default 30)")
		minPts  = flag.Int("minpts", 0, "DBSCAN MinPts (0 = paper default 4)")
		minConf = flag.Float64("minconf", 0, "minimum confidence (0 = paper default 0.3)")
		distant = flag.Int("distant", 0, "distant-time threshold d (0 = paper default 60)")
		tc      = flag.Int("tc", -1, "current time (absolute sample index)")
		tq      = flag.Int("tq", -1, "query time (absolute sample index, > tc)")
		k       = flag.Int("k", 1, "number of predictions")
		recent  = flag.Int("recent", 10, "recent-movement window ending at tc")
		stats   = flag.Bool("stats", false, "print model statistics and exit")
	)
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "hpmquery: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*data)
	if err != nil {
		fatal(err)
	}
	tr, err := hpm.ReadTrajectoryCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	if *period <= 0 {
		maxP := tr.Len() / 2
		if maxP > 1000 {
			maxP = 1000
		}
		detected, err := hpm.DetectPeriod(tr, 10, maxP)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("auto-detected period: %d\n", detected)
		*period = detected
	}

	p, err := hpm.Train(tr, hpm.Config{
		Period:           *period,
		Eps:              *eps,
		MinPts:           *minPts,
		MinConfidence:    *minConf,
		SubTrajectories:  *train,
		DistantThreshold: *distant,
	})
	if err != nil {
		fatal(err)
	}

	if *stats || *tc < 0 || *tq < 0 {
		fmt.Printf("samples:          %d (%d sub-trajectories of period %d)\n",
			tr.Len(), tr.Len() / *period, *period)
		fmt.Printf("frequent regions: %d\n", p.NumRegions())
		fmt.Printf("patterns:         %d\n", p.NumPatterns())
		fmt.Printf("index size:       %d KiB\n", p.IndexBytes()/1024)
		fmt.Printf("world bounds:     %v\n", p.Bounds())
		if *tc < 0 || *tq < 0 {
			return
		}
	}

	recentPts, err := tr.Recent(*tc, *recent)
	if err != nil {
		fatal(err)
	}
	preds, err := p.Predict(recentPts, *tq, *k)
	if err != nil {
		fatal(err)
	}
	if len(preds) == 0 {
		fmt.Println("no prediction (no matching pattern and motion fallback disabled)")
		return
	}
	for i, pr := range preds {
		fmt.Printf("#%d %v  source=%v score=%.3f confidence=%.2f\n",
			i+1, pr.Location, pr.Source, pr.Score, pr.Confidence)
	}
	if *tq < tr.Len() {
		truth := tr.At(*tq)
		fmt.Printf("actual: %v (top-1 error %.1f)\n", truth, preds[0].Location.Dist(truth))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpmquery:", err)
	os.Exit(1)
}
