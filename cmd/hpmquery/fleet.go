package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Fleet subcommands: thin clients for a running hpmserve's /query/range and
// /query/knn endpoints. The server answers from its incrementally
// maintained spatial index, so these return in microseconds even against
// fleets of 100k objects.

// fleetResult mirrors serve's fleetResultJSON wire shape.
type fleetResult struct {
	ID      string  `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Path    string  `json:"path"`
	Horizon int     `json:"horizon"`
	Dist    float64 `json:"dist"`
}

type fleetResponse struct {
	Horizon int           `json:"horizon"`
	Results []fleetResult `json:"results"`
	Error   string        `json:"error"`
}

func runRange(args []string) {
	fs := flag.NewFlagSet("hpmquery range", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "localhost:8080", "hpmserve address")
		minx    = fs.Float64("minx", 0, "rectangle min X")
		miny    = fs.Float64("miny", 0, "rectangle min Y")
		maxx    = fs.Float64("maxx", 0, "rectangle max X")
		maxy    = fs.Float64("maxy", 0, "rectangle max Y")
		horizon = fs.Int("horizon", 30, "prediction horizon in ticks ahead of each object's latest observation")
	)
	fs.Parse(args)
	q := url.Values{}
	q.Set("minx", formatFloat(*minx))
	q.Set("miny", formatFloat(*miny))
	q.Set("maxx", formatFloat(*maxx))
	q.Set("maxy", formatFloat(*maxy))
	q.Set("horizon", strconv.Itoa(*horizon))
	resp := fleetGet(*addr, "/query/range", q)
	fmt.Printf("%d objects predicted in [%g,%g]x[%g,%g] at horizon %d (bucket %d):\n",
		len(resp.Results), *minx, *maxx, *miny, *maxy, *horizon, resp.Horizon)
	for _, r := range resp.Results {
		fmt.Printf("  %-16s (%9.2f, %9.2f)  path=%s\n", r.ID, r.X, r.Y, r.Path)
	}
}

func runKNN(args []string) {
	fs := flag.NewFlagSet("hpmquery knn", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "localhost:8080", "hpmserve address")
		x       = fs.Float64("x", 0, "query point X")
		y       = fs.Float64("y", 0, "query point Y")
		k       = fs.Int("k", 3, "number of nearest objects")
		horizon = fs.Int("horizon", 30, "prediction horizon in ticks ahead of each object's latest observation")
	)
	fs.Parse(args)
	q := url.Values{}
	q.Set("x", formatFloat(*x))
	q.Set("y", formatFloat(*y))
	q.Set("k", strconv.Itoa(*k))
	q.Set("horizon", strconv.Itoa(*horizon))
	resp := fleetGet(*addr, "/query/knn", q)
	fmt.Printf("%d nearest objects to (%g, %g) at horizon %d (bucket %d):\n",
		len(resp.Results), *x, *y, *horizon, resp.Horizon)
	for i, r := range resp.Results {
		fmt.Printf("  #%d %-16s (%9.2f, %9.2f)  dist=%.2f path=%s\n", i+1, r.ID, r.X, r.Y, r.Dist, r.Path)
	}
}

func fleetGet(addr, path string, q url.Values) fleetResponse {
	// Accept both "host:port" and a full "http://host:port" -addr.
	host, scheme := addr, "http"
	if u, err := url.Parse(addr); err == nil && u.Scheme != "" && u.Host != "" {
		host, scheme = u.Host, u.Scheme
	}
	u := url.URL{Scheme: scheme, Host: host, Path: path, RawQuery: q.Encode()}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var body fleetResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		fatal(fmt.Errorf("decode response: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		msg := body.Error
		if msg == "" {
			msg = resp.Status
		}
		if resp.StatusCode == http.StatusNotImplemented {
			msg += " (start hpmserve with -fleet-index)"
		}
		fatal(fmt.Errorf("%s: %s", path, msg))
	}
	return body
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
