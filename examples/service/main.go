// Service runs the full moving-objects prediction stack end to end in one
// process: it starts the HTTP API on an ephemeral port, streams a
// vehicle's observations to it the way a GPS gateway would, and then asks
// the service where the vehicle is headed — near-term, distant, and the
// whole predicted path.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"hpm"
	"hpm/serve"
	"hpm/store"
)

const period = 120

func main() {
	st, err := store.New(store.Options{
		Config:          hpm.Config{Period: period, DistantThreshold: 40},
		MinTrainPeriods: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.Handler(st)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("service up at", base)

	// Stream eight days of a delivery van's movements in hourly batches.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetCar, 77)
	spec.Period = period
	spec.SubTrajectories = 8
	track := hpm.GenerateDataset(spec)
	for at := 0; at < track.Len(); at += period / 4 {
		end := at + period/4
		if end > track.Len() {
			end = track.Len()
		}
		post(base+"/objects/van-12/observe", track.Slice(at, end))
	}

	// Training runs in the background; drain it before querying so the
	// stats and predictions below see the fully trained model.
	post(base+"/flush", nil)

	var stats map[string]any
	getJSON(base+"/objects/van-12/stats", &stats)
	fmt.Printf("van-12: %v observations, trained=%v, %v patterns\n",
		stats["Points"], stats["Trained"], stats["Patterns"])

	var pred struct {
		Tq          int `json:"tq"`
		Predictions []struct {
			X, Y   float64
			Source string
			Score  float64
		} `json:"predictions"`
	}
	getJSON(base+"/objects/van-12/predict?horizon=15&k=1", &pred)
	p := pred.Predictions[0]
	fmt.Printf("in 15 min:  (%.0f, %.0f) via %s\n", p.X, p.Y, p.Source)

	getJSON(base+"/objects/van-12/predict?horizon=80&k=1", &pred)
	p = pred.Predictions[0]
	fmt.Printf("in 80 min:  (%.0f, %.0f) via %s (distant query)\n", p.X, p.Y, p.Source)

	var traj struct {
		Predictions []struct {
			X, Y   float64
			Source string
		} `json:"predictions"`
	}
	now := track.Len() - 1
	getJSON(fmt.Sprintf("%s/objects/van-12/trajectory?from=%d&to=%d", base, now+1, now+30), &traj)
	fmt.Printf("next 30 samples predicted (%d points); first 3:\n", len(traj.Predictions))
	for i := 0; i < 3; i++ {
		q := traj.Predictions[i]
		fmt.Printf("  t+%d (%.0f, %.0f) via %s\n", i+1, q.X, q.Y, q.Source)
	}
}

func post(url string, pts []hpm.Point) {
	pairs := make([][2]float64, len(pts))
	for i, p := range pts {
		pairs[i] = [2]float64{p.X, p.Y}
	}
	body, err := json.Marshal(map[string]any{"points": pairs})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
}

func getJSON(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}
