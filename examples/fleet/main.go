// Fleet manages predictors for a small mixed fleet — delivery cars on a
// street grid and a survey airplane — showing the per-object nature of the
// model: each vehicle gets its own mined patterns and its own Trajectory
// Pattern Tree, and the dispatcher queries them side by side.
//
// It also demonstrates persistence: trajectories round-trip through the
// CSV codec the way a deployment would load them from a tracking database.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"hpm"
)

type vehicle struct {
	name      string
	dataset   hpm.Dataset
	seed      int64
	predictor *hpm.Predictor
	track     *hpm.Trajectory
	spec      hpm.DatasetSpec
}

func main() {
	fleet := []*vehicle{
		{name: "van-12", dataset: hpm.DatasetCar, seed: 101},
		{name: "van-34", dataset: hpm.DatasetCar, seed: 202},
		{name: "survey-1", dataset: hpm.DatasetAirplane, seed: 303},
	}

	const trainDays = 50
	for _, v := range fleet {
		spec := hpm.DefaultDatasetSpec(v.dataset, v.seed)
		spec.SubTrajectories = trainDays + 10
		track := hpm.GenerateDataset(spec)

		// Round-trip through CSV, as a deployment loading from storage
		// would.
		var buf bytes.Buffer
		if err := track.WriteCSV(&buf); err != nil {
			log.Fatal(err)
		}
		loaded, err := hpm.ReadTrajectoryCSV(&buf)
		if err != nil {
			log.Fatal(err)
		}

		p, err := hpm.Train(loaded, hpm.Config{
			Period:          spec.Period,
			SubTrajectories: trainDays,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		v.predictor, v.track, v.spec = p, loaded, spec
		fmt.Printf("%-9s %-8v history=%2dd regions=%4d patterns=%6d index=%5dKiB\n",
			v.name, v.dataset, trainDays, p.NumRegions(), p.NumPatterns(), p.IndexBytes()/1024)
	}

	fmt.Println("\ndispatch board — positions 30 samples out:")
	rng := rand.New(rand.NewSource(9))
	for _, v := range fleet {
		day := trainDays + rng.Intn(10)
		tc := day*v.spec.Period + 40 + rng.Intn(100)
		recent, err := v.track.Recent(tc, 10)
		if err != nil {
			log.Fatal(err)
		}
		preds, err := v.predictor.Predict(recent, tc+30, 1)
		if err != nil {
			log.Fatal(err)
		}
		truth := v.track.At(tc + 30)
		if len(preds) == 0 {
			fmt.Printf("  %-9s no prediction\n", v.name)
			continue
		}
		p := preds[0]
		fmt.Printf("  %-9s %-8v -> %v  (actual %v, off by %.0f)\n",
			v.name, p.Source, p.Location, truth, p.Location.Dist(truth))
	}

	// End-of-shift question for one van: where will it most likely be in
	// four hours? Backward Query Processing answers from its daily habits.
	fmt.Println("\nend-of-shift forecast for van-12 (distant query, top 3):")
	v := fleet[0]
	tc := (trainDays+3)*v.spec.Period + 20
	recent, err := v.track.Recent(tc, 10)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := v.predictor.Predict(recent, tc+200, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range preds {
		fmt.Printf("  #%d %v (score %.3f, confidence %.2f)\n", i+1, p.Location, p.Score, p.Confidence)
	}
}
