// Commuter reproduces the paper's motivating scenario (§I and Fig. 3):
// Jane leaves home every morning; on weekdays she passes the city and ends
// at work, on weekends she passes the shopping center and ends at the
// beach. A query that only extrapolates her recent velocity cannot know
// which — her trajectory patterns can.
//
// The program trains on several weeks of movement, then answers three
// queries: a weekday mid-commute (the pattern disambiguates toward work), a
// weekend mid-commute (toward the beach), and a distant-time query hours
// ahead, where Backward Query Processing answers from where Jane usually
// is at that time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpm"
)

// landmark positions (extent 0..10000).
var (
	home  = hpm.Pt(1000, 1000)
	city  = hpm.Pt(3500, 4000)
	shop  = hpm.Pt(5000, 1500)
	work  = hpm.Pt(8000, 8000)
	beach = hpm.Pt(9000, 2000)
)

const (
	period = 96 // one sample per 15 minutes
	weeks  = 8
)

// day synthesizes one day through the given waypoints with dwell segments.
func day(rng *rand.Rand, waypoints []hpm.Point, noise float64) []hpm.Point {
	// Segment the day evenly across the waypoint legs, with a dwell at
	// the final destination in the afternoon and a return home at night.
	full := append(append([]hpm.Point{}, waypoints...), waypoints[0])
	legs := len(full) - 1
	pts := make([]hpm.Point, 0, period)
	for leg := 0; leg < legs; leg++ {
		steps := period / legs
		if leg == legs-1 {
			steps = period - len(pts)
		}
		for s := 0; s < steps; s++ {
			t := float64(s) / float64(steps)
			// Hold at the waypoint for the first third of each leg
			// (Jane works, shops, swims...), then travel.
			travel := 0.0
			if t > 0.33 {
				travel = (t - 0.33) / 0.67
			}
			p := full[leg].Lerp(full[leg+1], travel)
			pts = append(pts, hpm.Pt(p.X+rng.NormFloat64()*noise, p.Y+rng.NormFloat64()*noise))
		}
	}
	return pts[:period]
}

func main() {
	rng := rand.New(rand.NewSource(7))

	var points []hpm.Point
	for w := 0; w < weeks; w++ {
		for d := 0; d < 7; d++ {
			route := []hpm.Point{home, city, work}
			if d >= 5 { // weekend
				route = []hpm.Point{home, shop, beach}
			}
			points = append(points, day(rng, route, 25)...)
		}
	}
	tr := hpm.NewTrajectory(points)

	predictor, err := hpm.Train(tr, hpm.Config{
		Period:           period,
		Eps:              120, // 15-minute sampling spreads positions wider than GPS noise
		MinPts:           4,
		DistantThreshold: 24, // six hours ahead counts as distant
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d weeks: %d regions, %d patterns\n\n",
		weeks, predictor.NumRegions(), predictor.NumPatterns())

	classify := func(p hpm.Point) string {
		best, name := p.Dist(work), "work"
		for _, c := range []struct {
			n   string
			loc hpm.Point
		}{{"beach", beach}, {"city", city}, {"shop", shop}, {"home", home}} {
			if d := p.Dist(c.loc); d < best {
				best, name = d, c.n
			}
		}
		return name
	}

	// Three fresh days continue after the history (timestamps keep
	// counting; days repeat modulo the period).
	weekdayStart := len(points) // a Monday
	ask := func(label string, route []hpm.Point, base, tc, tq int) {
		dayPts := day(rng, route, 25)
		var recent []hpm.TimedPoint
		for off := tc - 5; off <= tc; off++ {
			recent = append(recent, hpm.TimedPoint{T: base + off, Loc: dayPts[off]})
		}
		preds, err := predictor.Predict(recent, base+tq, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (now offset %d, asking offset %d):\n", label, tc, tq)
		for _, p := range preds {
			fmt.Printf("  %-8v near %-6s score %.3f at %v\n",
				p.Source, classify(p.Location), p.Score, p.Location)
		}
		// Why? Unpack the winning rule.
		if ex, ok := predictor.Explain(preds[0]); ok {
			fmt.Printf("  because %s (seen on %d days)\n", ex.Rule, ex.Support)
		}
		fmt.Println()
	}

	// Mid-morning on a weekday, mid-commute past the city; where at the
	// end of the commute? The City premise disambiguates toward work.
	ask("weekday commute", []hpm.Point{home, city, work}, weekdayStart, 40, 60)

	// Same clock time on a weekend, passing the shopping center instead:
	// the same question now resolves toward the beach.
	weekendStart := weekdayStart + 5*period
	ask("weekend outing", []hpm.Point{home, shop, beach}, weekendStart, 40, 60)

	// Distant-time query: it is early morning; where will Jane be this
	// evening? Recent movements barely matter — BQP answers from where
	// she usually is at that hour.
	ask("distant evening query", []hpm.Point{home, city, work}, weekdayStart+7*period, 10, 60)
}
