// Wildlife tracks a GPS-collared animal — the paper's Cow dataset, from
// the CSIRO virtual-fencing project — and compares the hybrid predictor
// against pure motion extrapolation across forecast horizons.
//
// Animals wander, graze and revisit the same spots on a daily rhythm;
// motion functions extrapolate the last few minutes and drift, while the
// pattern side of HPM recalls where the animal usually is at that hour.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpm"
)

func main() {
	// A season of daily movement for one animal: 80 days, 300 samples/day.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetCow, 2024)
	spec.SubTrajectories = 80
	tr := hpm.GenerateDataset(spec)

	// Train on the first 60 days; the remaining 20 are "the future" we
	// evaluate against.
	const trainDays = 60
	predictor, err := hpm.Train(tr, hpm.Config{
		Period:          spec.Period,
		SubTrajectories: trainDays,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("herd member #7: %d days of history, %d frequent regions, %d patterns\n\n",
		trainDays, predictor.NumRegions(), predictor.NumPatterns())

	// A pure-extrapolation baseline: a second predictor whose confidence
	// bar no rule can clear, so every query falls through to the RMF
	// motion function — the same fallback the hybrid uses, isolated.
	baseline, err := hpm.Train(tr, hpm.Config{
		Period:          spec.Period,
		SubTrajectories: trainDays,
		MinConfidence:   1.01, // nothing qualifies: every query falls back to RMF
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	horizons := []int{10, 30, 60, 120, 240}
	fmt.Println("forecast horizon | HPM error | motion-only error   (map units, avg of 40 queries)")
	for _, h := range horizons {
		var hpmErr, motErr float64
		const queries = 40
		for q := 0; q < queries; q++ {
			day := trainDays + rng.Intn(80-trainDays)
			tc := day*spec.Period + 10 + rng.Intn(spec.Period-20-h)
			recent, err := tr.Recent(tc, 10)
			if err != nil {
				log.Fatal(err)
			}
			truth := tr.At(tc + h)
			if preds, err := predictor.Predict(recent, tc+h, 1); err == nil && len(preds) > 0 {
				hpmErr += preds[0].Location.Dist(truth)
			}
			if preds, err := baseline.Predict(recent, tc+h, 1); err == nil && len(preds) > 0 {
				motErr += preds[0].Location.Dist(truth)
			}
		}
		fmt.Printf("   t+%-12d %9.0f %19.0f\n", h, hpmErr/queries, motErr/queries)
	}

	fmt.Println("\nwhere does the herd member usually head at dusk? (distant-time query)")
	day := trainDays + 2
	tc := day*spec.Period + 30 // early morning
	recent, err := tr.Recent(tc, 10)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := predictor.Predict(recent, tc+250, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range preds {
		fmt.Printf("  #%d %v (source %v, score %.3f)\n", i+1, p.Location, p.Source, p.Score)
	}
}
