// Quickstart: train a Hybrid Prediction Model on a synthetic commuter
// trajectory and ask where the object will be a few minutes — and a few
// hours — from now.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpm"
)

func main() {
	// Build 30 "days" of movement, 100 samples each: the object commutes
	// along the same route every day with a little GPS noise.
	const period = 100
	const days = 30
	rng := rand.New(rand.NewSource(42))

	route := make([]hpm.Point, period)
	for t := range route {
		// A simple out-and-back: away in the morning, home at night.
		progress := float64(t) / float64(period)
		route[t] = hpm.Pt(1000+8000*bump(progress), 1000+4000*bump(progress*1.3))
	}
	var points []hpm.Point
	for d := 0; d < days; d++ {
		for _, p := range route {
			points = append(points, hpm.Pt(p.X+rng.NormFloat64()*15, p.Y+rng.NormFloat64()*15))
		}
	}

	// Train: Period is the only required knob; everything else follows
	// the paper's defaults (DBSCAN Eps 30 / MinPts 4, min confidence 0.3,
	// distant threshold 60, RMF fallback).
	predictor, err := hpm.TrainPoints(points, hpm.Config{Period: period})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d frequent regions, %d trajectory patterns, index %d KiB\n",
		predictor.NumRegions(), predictor.NumPatterns(), predictor.IndexBytes()/1024)

	// The object is moving through a fresh day (timestamps continue
	// after the training data). Give the predictor its last 10 positions.
	now := len(points) - period + 20 // 20 samples into the newest day
	tr := hpm.NewTrajectory(points)
	recent, err := tr.Recent(now, 10)
	if err != nil {
		log.Fatal(err)
	}

	for _, horizon := range []int{5, 30, 70} {
		preds, err := predictor.Predict(recent, now+horizon, 1)
		if err != nil {
			log.Fatal(err)
		}
		if len(preds) == 0 {
			fmt.Printf("t+%-3d  no prediction\n", horizon)
			continue
		}
		p := preds[0]
		fmt.Printf("t+%-3d  %-8v -> %v (score %.3f)\n", horizon, p.Source, p.Location, p.Score)
	}
}

// bump maps [0,1] to a smooth out-and-back profile in [0,1].
func bump(x float64) float64 {
	x = x - float64(int(x))
	if x < 0.5 {
		return 2 * x
	}
	return 2 * (1 - x)
}
