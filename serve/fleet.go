package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hpm"
	"hpm/internal/spatial"
	"hpm/store"
)

// Fleet-wide predictive queries, served from the store's incrementally
// maintained spatial index (Options.FleetIndex):
//
//	GET /query/range?minx=&miny=&maxx=&maxy=&horizon=H
//	GET /query/knn?x=&y=&k=K&horizon=H
//	GET /subscribe?minx=&miny=&maxx=&maxy=&horizon=H&interval_ms=N  (SSE)
//
// Both queries answer from cached predictions — no model is fitted on the
// request path — and return each matching object's predicted position plus
// the answering-path tag. /subscribe pushes the range result as
// server-sent events: one immediately, then one per interval until the
// client disconnects.

// fleetResultJSON is the wire form of one fleet query answer.
type fleetResultJSON struct {
	ID      string  `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Path    string  `json:"path"`
	Horizon int     `json:"horizon"`
	Dist    float64 `json:"dist,omitempty"`
}

func fleetResults(res []spatial.Result) []fleetResultJSON {
	out := make([]fleetResultJSON, len(res))
	for i, r := range res {
		out[i] = fleetResultJSON{ID: r.ID, X: r.Pos.X, Y: r.Pos.Y, Path: r.Path, Horizon: r.Horizon, Dist: r.Dist}
	}
	return out
}

// floatParam parses a float query parameter; absent or malformed values are
// errors (every fleet-query float is required).
func floatParam(q, name string) (float64, error) {
	s := q
	if s == "" {
		return 0, fmt.Errorf("missing %s", name)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed %s=%q: want a number", name, s)
	}
	return v, nil
}

// rectParams parses the minx/miny/maxx/maxy quartet shared by /query/range
// and /subscribe.
func rectParams(r *http.Request) (hpm.Rect, error) {
	q := r.URL.Query()
	var rect hpm.Rect
	var err error
	if rect.Min.X, err = floatParam(q.Get("minx"), "minx"); err != nil {
		return rect, err
	}
	if rect.Min.Y, err = floatParam(q.Get("miny"), "miny"); err != nil {
		return rect, err
	}
	if rect.Max.X, err = floatParam(q.Get("maxx"), "maxx"); err != nil {
		return rect, err
	}
	if rect.Max.Y, err = floatParam(q.Get("maxy"), "maxy"); err != nil {
		return rect, err
	}
	return rect, nil
}

func handleQueryRange(st *store.Store, w http.ResponseWriter, r *http.Request) {
	rect, err := rectParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	h, err := intParam(r.URL.Query().Get("horizon"), "horizon", -1)
	if err != nil || h <= 0 {
		writeJSON(w, http.StatusBadRequest, errBody("need a positive horizon"))
		return
	}
	res, err := st.QueryRangeContext(r.Context(), rect, h)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"horizon": st.FleetBucketHorizon(h),
		"results": fleetResults(res),
	})
}

func handleQueryKNN(st *store.Store, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	x, err := floatParam(q.Get("x"), "x")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	y, err := floatParam(q.Get("y"), "y")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	k, err := intParam(q.Get("k"), "k", -1)
	if err != nil || k <= 0 {
		writeJSON(w, http.StatusBadRequest, errBody("need a positive k"))
		return
	}
	h, err := intParam(q.Get("horizon"), "horizon", -1)
	if err != nil || h <= 0 {
		writeJSON(w, http.StatusBadRequest, errBody("need a positive horizon"))
		return
	}
	res, err := st.QueryNearestContext(r.Context(), hpm.Pt(x, y), k, h)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"horizon": st.FleetBucketHorizon(h),
		"results": fleetResults(res),
	})
}

// subscribe push cadence bounds: clients pick interval_ms within them.
const (
	minPushInterval     = 20 * time.Millisecond
	defaultPushInterval = time.Second
)

// handleSubscribe streams range-query results as server-sent events. The
// first event is pushed immediately (so a subscriber renders without
// waiting a full interval), then one per interval. Each event re-runs the
// indexed query, so subscribers track ingest, retrains, and removals; the
// stream ends when the client disconnects, or when the subscriber table
// fills and this client — stalled past its write deadline — is evicted
// to admit a newcomer.
func (s *server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	st := s.st
	rect, err := rectParams(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	q := r.URL.Query()
	h, err := intParam(q.Get("horizon"), "horizon", -1)
	if err != nil || h <= 0 {
		writeJSON(w, http.StatusBadRequest, errBody("need a positive horizon"))
		return
	}
	ms, err := intParam(q.Get("interval_ms"), "interval_ms", int(defaultPushInterval/time.Millisecond))
	if err != nil || ms < 0 {
		writeJSON(w, http.StatusBadRequest, errBody("malformed interval_ms"))
		return
	}
	interval := time.Duration(ms) * time.Millisecond
	if interval < minPushInterval {
		interval = minPushInterval
	}
	// Validate once before committing to the stream so a bad request still
	// gets a JSON error status.
	if _, err := st.QueryRange(rect, h); err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errBody("streaming unsupported"))
		return
	}

	// eventDue is the instant by which one event write must complete: the
	// per-event write deadline below. Registered in the subscriber table
	// so the eviction policy can spot the client that is blowing it.
	eventDue := func() time.Time { return time.Now().Add(2*interval + 10*time.Second) }
	ctx := r.Context()
	var handle int
	if s.subs != nil {
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		handle, ok = s.subs.add(cancel, eventDue())
		if !ok {
			// Full of clients that are all keeping up: shed the newcomer.
			s.shed.inc("subscribe", "subscribers_full")
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeJSON(w, http.StatusTooManyRequests, errBody("subscriber limit reached, retry later"))
			return
		}
		defer s.subs.remove(handle)
		ctx = sctx
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for seq := 0; ; seq++ {
		res, err := st.QueryRange(rect, h)
		if err != nil {
			return // index disabled mid-stream cannot happen; be safe anyway
		}
		payload, err := json.Marshal(map[string]any{
			"seq":     seq,
			"horizon": st.FleetBucketHorizon(h),
			"results": fleetResults(res),
		})
		if err != nil {
			return
		}
		// Long-lived streams must outlive any server write timeout; pushing
		// the deadline per event caps how long a dead client lingers.
		due := eventDue()
		if s.subs != nil {
			s.subs.touch(handle, due)
		}
		_ = rc.SetWriteDeadline(due)
		if _, err := fmt.Fprintf(w, "event: update\ndata: %s\n\n", payload); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
