package serve

import (
	"bytes"
	"fmt"
	"net/http"

	"hpm"
)

// GET /metrics renders the store's operational counters in the Prometheus
// text exposition format (0.0.4) with nothing but the standard library:
// fleet shape, WAL commit activity, training health, query traffic by
// answering path, and the online evaluator's per-horizon × per-path
// accuracy matrix. Every cell of the matrix is always emitted — zero or
// not — so scrapes see a stable series set and rate() never loses a
// series to sparsity.

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.st
	fs := st.FleetStats()
	var b bytes.Buffer

	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	gauge("hpm_objects", "Tracked objects.", fs.Objects)
	gauge("hpm_objects_trained", "Objects serving a trained model.", fs.Trained)
	gauge("hpm_pending_trains", "Background (re)trains scheduled but not yet swapped in.", fs.PendingTrains)
	counter("hpm_train_failures_total", "Failed background train attempts since start.", fs.TrainFailures)
	counter("hpm_drift_retrains_total", "Retrains triggered early by the drift EWMA.", fs.DriftRetrains)

	// Model-update cost by path: full batch trains vs incremental extends.
	// rate(duration)/rate(count) is the live per-update cost each path pays.
	counter("hpm_trains_total", "Full model (re)train attempts.", fs.Trains)
	counter("hpm_extends_total", "Incremental model updates (Extends).", fs.Extends)
	counter("hpm_train_duration_seconds_total", "Cumulative wall-clock seconds spent in full trains.", fs.TrainSeconds)
	counter("hpm_extend_duration_seconds_total", "Cumulative wall-clock seconds spent in incremental extends.", fs.ExtendSeconds)

	counter("hpm_fallback_fits_total", "Motion functions actually fitted by fallback queries (cache misses).", fs.Queries.FallbackFits)

	if fs.FleetIndex {
		gauge("hpm_index_objects", "Objects with cached entries in the fleet spatial index.", fs.Spatial.Objects)
		gauge("hpm_index_entries", "Cached prediction entries in the fleet spatial index.", fs.Spatial.Entries)
		counter("hpm_index_updates_total", "Incremental fleet-index refreshes (one per acknowledged observe or swap).", fs.Spatial.Updates)
		counter("hpm_index_rebins_total", "Fleet-index entries that crossed a grid cell on refresh.", fs.Spatial.Rebins)
		counter("hpm_index_range_queries_total", "Fleet range queries answered from the index.", fs.Spatial.RangeQueries)
		counter("hpm_index_knn_queries_total", "Fleet kNN queries answered from the index.", fs.Spatial.KNNQueries)
	}

	counter("hpm_wal_records_total", "Observation records appended to the write-ahead log.", fs.WAL.Records)
	counter("hpm_wal_batches_total", "WAL group commits (file writes).", fs.WAL.Batches)
	counter("hpm_wal_fsyncs_total", "WAL fsyncs issued.", fs.WAL.Fsyncs)

	// Checkpoint cost: rate(objects)/rate(checkpoints) is the per-pass
	// re-encode volume — near the fleet size under full rewrites, near the
	// dirty fraction under incremental checkpoints.
	counter("hpm_checkpoints_total", "Completed checkpoints.", fs.Checkpoints)
	counter("hpm_checkpoint_duration_seconds_total", "Cumulative wall-clock seconds spent in checkpoints.", fs.CheckpointSeconds)
	counter("hpm_checkpoint_objects_written_total", "Objects re-encoded by checkpoints (dirty shards only when incremental).", fs.CheckpointObjects)
	gauge("hpm_snapshot_bytes", "On-disk size of the current snapshot (manifest plus live segments).", fs.SnapshotBytes)

	// Degradation ladder: the read-only state machine, its causes, and the
	// admission layer's shedding. hpm_degraded is the alert-on gauge; the
	// per-{endpoint,reason} shed series only appear once they fire (the
	// label space is open-ended), with the _total counter always present.
	degraded := 0
	if fs.Degraded {
		degraded = 1
	}
	gauge("hpm_degraded", "1 while the store is degraded read-only (WAL failure), else 0.", degraded)
	counter("hpm_wal_errors_total", "Failed WAL group commits (write or fsync) since start.", fs.WALErrors)
	counter("hpm_recoveries_total", "Completed degrade-to-healthy recovery cycles.", fs.Recoveries)
	counter("hpm_drift_suppressed_total", "Drift retrains skipped by the trainer-saturation valve.", fs.DriftSuppressed)
	if s.subs != nil {
		gauge("hpm_subscribers", "Live SSE subscriber streams.", s.subs.count())
	}
	fmt.Fprintf(&b, "# HELP hpm_shed_total Requests shed by admission control, by endpoint and reason.\n")
	fmt.Fprintf(&b, "# TYPE hpm_shed_total counter\n")
	fmt.Fprintf(&b, "hpm_shed_total %d\n", s.shed.total())
	for _, sm := range s.shed.snapshot() {
		fmt.Fprintf(&b, "hpm_shed_total{endpoint=%q,reason=%q} %d\n", sm.endpoint, sm.reason, sm.n)
	}

	// The path label set comes from the hpa.Path registry — every answering
	// path plus the synthetic "unanswered" outcome — so a newly added path
	// appears here without this exporter changing.
	fmt.Fprintf(&b, "# HELP hpm_queries_total Predictive queries answered, by answering path.\n")
	fmt.Fprintf(&b, "# TYPE hpm_queries_total counter\n")
	for _, p := range hpm.Paths() {
		fmt.Fprintf(&b, "hpm_queries_total{path=%q} %d\n", p.String(), fs.Queries.ByPath(p))
	}
	fmt.Fprintf(&b, "hpm_queries_total{path=\"unanswered\"} %d\n", fs.Queries.Unanswered)
	counter("hpm_query_nodes_visited_total", "Trajectory-pattern-tree nodes touched by queries.", fs.Queries.NodesVisited)

	gauge("hpm_eval_outstanding", "Served predictions awaiting their ground truth.", fs.Eval.Outstanding)
	counter("hpm_eval_recorded_total", "Served predictions parked for scoring.", fs.Eval.Recorded)
	counter("hpm_eval_scored_total", "Predictions scored against an arrived observation.", fs.Eval.Scored)
	counter("hpm_eval_expired_total", "Parked predictions whose timestamp passed unobserved.", fs.Eval.Expired)
	counter("hpm_eval_evicted_total", "Parked predictions dropped to ring pressure.", fs.Eval.Evicted)

	fmt.Fprintf(&b, "# HELP hpm_eval_attempts_total Scored predictions by horizon bucket and requested route (declines charged to the route, not the path that answered).\n")
	fmt.Fprintf(&b, "# TYPE hpm_eval_attempts_total counter\n")
	for _, c := range fs.Eval.Cells {
		fmt.Fprintf(&b, "hpm_eval_attempts_total{horizon_le=%q,path=%q} %d\n", c.HorizonLE, c.Path, c.Attempts)
	}
	fmt.Fprintf(&b, "# HELP hpm_eval_hits_total Scored predictions within the hit distance, by horizon bucket and requested route.\n")
	fmt.Fprintf(&b, "# TYPE hpm_eval_hits_total counter\n")
	for _, c := range fs.Eval.Cells {
		fmt.Fprintf(&b, "hpm_eval_hits_total{horizon_le=%q,path=%q} %d\n", c.HorizonLE, c.Path, c.Hits)
	}
	fmt.Fprintf(&b, "# HELP hpm_eval_error_distance_sum Total error distance of scored predictions, by horizon bucket and requested route.\n")
	fmt.Fprintf(&b, "# TYPE hpm_eval_error_distance_sum counter\n")
	for _, c := range fs.Eval.Cells {
		fmt.Fprintf(&b, "hpm_eval_error_distance_sum{horizon_le=%q,path=%q} %g\n", c.HorizonLE, c.Path, c.ErrorSum)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}
