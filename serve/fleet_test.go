package serve

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hpm"
	"hpm/internal/spatial"
	"hpm/store"
)

func fleetServer(t *testing.T, opts store.Options) (*httptest.Server, *store.Store) {
	t.Helper()
	if opts.Config.Period == 0 {
		opts.Config.Period = period
	}
	if opts.FleetIndex == nil {
		opts.FleetIndex = &spatial.Config{CellSize: 50}
	}
	st, err := store.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(st))
	t.Cleanup(srv.Close)
	return srv, st
}

// feedDataset pushes periods of a dataset trajectory through the store.
func feedDataset(t *testing.T, st *store.Store, id string, seed int64, periods int) {
	t.Helper()
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, seed)
	spec.Period = st.Period()
	spec.SubTrajectories = periods
	if err := st.ObserveBatch(id, hpm.GenerateDataset(spec).Points()); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRangeEndpoint(t *testing.T) {
	srv, st := fleetServer(t, store.Options{MinTrainPeriods: 3})
	feedDataset(t, st, "bike-1", 1, 5)
	feedDataset(t, st, "bike-2", 2, 5)

	body := getJSON(t, srv.URL+"/query/range?minx=-100000&miny=-100000&maxx=100000&maxy=100000&horizon=10", http.StatusOK)
	results, ok := body["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("results = %v", body["results"])
	}
	first := results[0].(map[string]any)
	if first["id"] != "bike-1" {
		t.Errorf("first result %v, want bike-1 (sorted by id)", first["id"])
	}
	for _, key := range []string{"x", "y", "path", "horizon"} {
		if _, ok := first[key]; !ok {
			t.Errorf("result missing %q: %v", key, first)
		}
	}
	if body["horizon"].(float64) != 10 {
		t.Errorf("quantized horizon = %v, want 10", body["horizon"])
	}
}

func TestQueryKNNEndpoint(t *testing.T) {
	srv, st := fleetServer(t, store.Options{MinTrainPeriods: 3})
	feedDataset(t, st, "a", 1, 5)
	feedDataset(t, st, "b", 2, 5)
	feedDataset(t, st, "c", 3, 5)

	body := getJSON(t, srv.URL+"/query/knn?x=0&y=0&k=2&horizon=15", http.StatusOK)
	results := body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("k=2 returned %d results", len(results))
	}
	d0 := results[0].(map[string]any)["dist"].(float64)
	d1 := results[1].(map[string]any)["dist"].(float64)
	if d0 > d1 {
		t.Errorf("results not sorted by distance: %g > %g", d0, d1)
	}
	if body["horizon"].(float64) != 20 {
		t.Errorf("horizon 15 should quantize to bucket 20, got %v", body["horizon"])
	}
}

func TestFleetQueryMalformedParams(t *testing.T) {
	srv, st := fleetServer(t, store.Options{MinTrainPeriods: 3})
	feedDataset(t, st, "a", 1, 2)
	cases := []string{
		"/query/range?miny=0&maxx=10&maxy=10&horizon=5",                     // missing minx
		"/query/range?minx=abc&miny=0&maxx=10&maxy=10&horizon=5",            // non-numeric
		"/query/range?minx=0&miny=0&maxx=10&maxy=10",                        // missing horizon
		"/query/range?minx=0&miny=0&maxx=10&maxy=10&horizon=0",              // non-positive horizon
		"/query/range?minx=0&miny=0&maxx=10&maxy=10&horizon=x",              // malformed horizon
		"/query/range?minx=50&miny=50&maxx=10&maxy=10&horizon=5",            // inverted rect
		"/query/knn?y=0&k=2&horizon=5",                                      // missing x
		"/query/knn?x=0&y=zz&k=2&horizon=5",                                 // non-numeric y
		"/query/knn?x=0&y=0&horizon=5",                                      // missing k
		"/query/knn?x=0&y=0&k=-1&horizon=5",                                 // negative k
		"/query/knn?x=0&y=0&k=2",                                            // missing horizon
		"/query/knn?x=NaN&y=0&k=2&horizon=5",                                // non-finite point
		"/subscribe?minx=0&miny=0&maxx=10&horizon=5",                        // missing maxy
		"/subscribe?minx=0&miny=0&maxx=10&maxy=10",                          // missing horizon
		"/subscribe?minx=0&miny=0&maxx=10&maxy=10&horizon=5&interval_ms=no", // bad interval
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", c, resp.StatusCode)
		}
	}
}

func TestFleetQueryWithoutIndex(t *testing.T) {
	srv, _ := testServer(t) // no FleetIndex
	for _, c := range []string{
		"/query/range?minx=0&miny=0&maxx=10&maxy=10&horizon=5",
		"/query/knn?x=0&y=0&k=2&horizon=5",
		"/subscribe?minx=0&miny=0&maxx=10&maxy=10&horizon=5",
	} {
		resp, err := http.Get(srv.URL + c)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("GET %s: status %d, want 501", c, resp.StatusCode)
		}
	}
}

// sseEvent reads one "event:/data:" pair from an SSE stream.
func sseEvent(t *testing.T, br *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			return event, data
		}
	}
}

func TestSubscribeStreamsUpdates(t *testing.T) {
	srv, st := fleetServer(t, store.Options{MinTrainPeriods: 1 << 20})
	feedDataset(t, st, "bike", 1, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		srv.URL+"/subscribe?minx=-100000&miny=-100000&maxx=100000&maxy=100000&horizon=10&interval_ms=20", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	// First event arrives immediately and already carries the object.
	ev, data := sseEvent(t, br)
	if ev != "update" {
		t.Errorf("event = %q, want update", ev)
	}
	if !strings.Contains(data, `"bike"`) {
		t.Errorf("first event missing object: %s", data)
	}
	if !strings.Contains(data, `"seq":0`) {
		t.Errorf("first event seq != 0: %s", data)
	}
	// A second object observed mid-stream shows up in a later push.
	feedDataset(t, st, "late", 2, 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, data = sseEvent(t, br)
		if strings.Contains(data, `"late"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("late object never appeared in the stream")
		}
	}
	cancel() // disconnect; the handler must notice and return
}

// TestFleetHammerWithSubscriber races observes, removals, and retrain swaps
// against indexed queries and one live SSE subscriber — the full stack
// under -race.
func TestFleetHammerWithSubscriber(t *testing.T) {
	srv, st := fleetServer(t, store.Options{MinTrainPeriods: 2, RetrainEvery: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		srv.URL+"/subscribe?minx=-100000&miny=-100000&maxx=100000&maxy=100000&horizon=10&interval_ms=20", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := 0
	var evMu sync.Mutex
	go func() {
		br := bufio.NewReader(resp.Body)
		for {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			evMu.Lock()
			events++
			evMu.Unlock()
		}
	}()

	stop := make(chan struct{})
	time.AfterFunc(400*time.Millisecond, func() { close(stop) })
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spec := hpm.DefaultDatasetSpec(hpm.DatasetCar, int64(w))
			spec.Period = period
			spec.SubTrajectories = 8
			pts := hpm.GenerateDataset(spec).Points()
			id := fmt.Sprintf("car-%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := (i * 9) % (len(pts) - 9)
				if err := st.ObserveBatch(id, pts[off:off+9]); err != nil {
					t.Error(err)
					return
				}
				if i%40 == 39 {
					if err := st.Remove(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(q)))
			client := srv.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var url string
				if i%2 == 0 {
					c := rng.Float64() * 500
					url = fmt.Sprintf("%s/query/range?minx=%g&miny=%g&maxx=%g&maxy=%g&horizon=10",
						srv.URL, c-200, c-200, c+200, c+200)
				} else {
					url = fmt.Sprintf("%s/query/knn?x=%g&y=%g&k=2&horizon=50",
						srv.URL, rng.Float64()*500, rng.Float64()*500)
				}
				r2, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				r2.Body.Close()
				if r2.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", url, r2.StatusCode)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	cancel()
	evMu.Lock()
	defer evMu.Unlock()
	if events == 0 {
		t.Error("subscriber saw no events during the hammer")
	}
}

func TestMetricsIncludesIndexAndFitCounters(t *testing.T) {
	srv, st := fleetServer(t, store.Options{MinTrainPeriods: 3})
	feedDataset(t, st, "bike", 1, 5)
	if _, err := st.QueryRange(hpm.Rect{Min: hpm.Pt(-1e6, -1e6), Max: hpm.Pt(1e6, 1e6)}, 10); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		sb.WriteString(line)
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"hpm_fallback_fits_total",
		"hpm_index_objects 1",
		"hpm_index_entries",
		"hpm_index_updates_total",
		"hpm_index_range_queries_total 1",
		"hpm_index_knn_queries_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
