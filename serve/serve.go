// Package serve exposes a store.Store as a JSON-over-HTTP API, the shape a
// tracking backend would embed:
//
//	POST /objects/{id}/observe       {"points": [[x, y], ...]}
//	POST /observe                    [{"id": "...", "points": [[x, y], ...]}, ...]
//	POST /flush                      drain background trains
//	GET  /objects                    -> {"objects": ["bus-7", ...]}
//	GET  /objects/{id}/stats         -> object summary + query-path counters
//	GET  /objects/{id}/predict?tq=N&k=K        (or horizon=H instead of tq)
//	POST /objects/{id}/predict       {"tqs": [N, ...], "k": K}  (batch; or "horizons")
//	GET  /objects/{id}/trajectory?from=N&to=M  (predicted path, inclusive)
//	GET  /objects/{id}/eval          -> online prediction-quality summary
//	GET  /query/range?minx=&miny=&maxx=&maxy=&horizon=H   predictive range query
//	GET  /query/knn?x=&y=&k=K&horizon=H                   predictive kNN query
//	GET  /subscribe?minx=&...&horizon=H&interval_ms=N     SSE push of a range query
//	GET  /stats                      -> fleet-level counters (JSON)
//	GET  /metrics                    -> same counters, Prometheus text format
//	GET  /healthz                    liveness probe
//	GET  /readyz                     readiness + recovery/training health
//
// Predictions return the location, the provenance (pattern vs motion), the
// ranking score, the pattern confidence, and the consequence region's
// bounding box when a pattern answered. The batch form answers many query
// times in one request against a single snapshot of the object, amortizing
// premise encoding and motion-function fitting across the times.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"hpm"
	"hpm/store"
)

// maxObserveBody bounds one observe request (1 MiB of JSON ≈ tens of
// thousands of points), protecting the server from unbounded payloads.
const maxObserveBody = 1 << 20

// maxFleetBody bounds one bulk observe request: a fleet tick touches many
// objects, so it gets more headroom than a single-object observe.
const maxFleetBody = 8 << 20

// Handler returns the HTTP handler for the store with admission control
// disabled — the zero Limits — for embedders that do their own limiting.
func Handler(st *store.Store) http.Handler {
	return NewHandler(st, Limits{})
}

// NewHandler returns the HTTP handler for the store with the given
// admission limits. Every endpoint but /subscribe, /healthz, /readyz and
// /metrics passes the admission guard (concurrency limit + deadline +
// shed accounting); the exempt four stay cheap and must answer even when
// the serving paths are saturated, or the operator flies blind exactly
// when it matters.
func NewHandler(st *store.Store, lim Limits) http.Handler {
	s := newServer(st, lim)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /objects", s.guard("objects", classRead, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"objects": st.Objects()})
	}))
	mux.HandleFunc("POST /objects/{id}/observe", s.guard("observe", classWrite, func(w http.ResponseWriter, r *http.Request) {
		handleObserve(st, w, r)
	}))
	// Bulk ingest: one request observes many objects, and on a durable
	// store the whole fleet tick rides a single WAL group commit (one
	// fsync for the entire request).
	mux.HandleFunc("POST /observe", s.guard("observe", classWrite, func(w http.ResponseWriter, r *http.Request) {
		handleObserveFleet(st, w, r)
	}))
	// Flush drains background (re)trains: afterwards every prior observe
	// is reflected in the models. Training failures surface here. Classed
	// as control work: it parks on the training pool, the most expensive
	// thing a request can do, so it gets the smallest concurrency slice.
	mux.HandleFunc("POST /flush", s.guard("flush", classControl, func(w http.ResponseWriter, r *http.Request) {
		if err := st.Flush(); err != nil {
			writeJSON(w, http.StatusInternalServerError, errBody(err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"flushed": true})
	}))
	mux.HandleFunc("GET /objects/{id}/stats", s.guard("stats", classRead, func(w http.ResponseWriter, r *http.Request) {
		stats, err := st.Stats(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, stats)
	}))
	mux.HandleFunc("GET /objects/{id}/predict", s.guard("predict", classRead, func(w http.ResponseWriter, r *http.Request) {
		handlePredict(st, w, r)
	}))
	mux.HandleFunc("POST /objects/{id}/predict", s.guard("predict", classRead, func(w http.ResponseWriter, r *http.Request) {
		handlePredictBatch(st, w, r)
	}))
	mux.HandleFunc("GET /objects/{id}/trajectory", s.guard("trajectory", classRead, func(w http.ResponseWriter, r *http.Request) {
		handleTrajectory(st, w, r)
	}))
	mux.HandleFunc("GET /objects/{id}/eval", s.guard("eval", classRead, func(w http.ResponseWriter, r *http.Request) {
		sum, err := st.EvalStats(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sum)
	}))
	// Fleet-wide predictive queries against the spatial index (answered
	// with 501 Not Implemented when the store runs without
	// Options.FleetIndex).
	mux.HandleFunc("GET /query/range", s.guard("query", classRead, func(w http.ResponseWriter, r *http.Request) {
		handleQueryRange(st, w, r)
	}))
	mux.HandleFunc("GET /query/knn", s.guard("query", classRead, func(w http.ResponseWriter, r *http.Request) {
		handleQueryKNN(st, w, r)
	}))
	// Long-lived SSE streams bypass the request limiters (a deadline or a
	// concurrency token held for minutes would be nonsense) and are capped
	// by the subscriber table instead.
	mux.HandleFunc("GET /subscribe", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubscribe(w, r)
	})
	mux.HandleFunc("GET /stats", s.guard("stats", classRead, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, st.FleetStats())
	}))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.handleMetrics(w, r)
	})
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		handleReadyz(st, w, r)
	})
	return mux
}

// observeRequest is the observe body: points as [x, y] pairs.
type observeRequest struct {
	Points [][2]float64 `json:"points"`
}

func handleObserve(st *store.Store, w http.ResponseWriter, r *http.Request) {
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObserveBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad body: "+err.Error()))
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, http.StatusBadRequest, errBody("no points"))
		return
	}
	pts := make([]hpm.Point, len(req.Points))
	for i, xy := range req.Points {
		pts[i] = hpm.Pt(xy[0], xy[1])
	}
	id := r.PathValue("id")
	if err := st.ObserveBatchContext(r.Context(), id, pts); err != nil {
		writeError(w, err)
		return
	}
	now, _ := st.Now(id)
	stats, _ := st.Stats(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"now":      now,
		"trained":  stats.Trained,
		"training": stats.Training,
	})
}

// fleetObservation is one element of the bulk observe body.
type fleetObservation struct {
	ID     string       `json:"id"`
	Points [][2]float64 `json:"points"`
}

func handleObserveFleet(st *store.Store, w http.ResponseWriter, r *http.Request) {
	var req []fleetObservation
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxFleetBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad body: "+err.Error()))
		return
	}
	if len(req) == 0 {
		writeJSON(w, http.StatusBadRequest, errBody("no observations"))
		return
	}
	batch := make([]store.Observation, len(req))
	points := 0
	for i, ob := range req {
		if ob.ID == "" {
			writeJSON(w, http.StatusBadRequest, errBody("observation without id"))
			return
		}
		if len(ob.Points) == 0 {
			writeJSON(w, http.StatusBadRequest, errBody("observation for "+ob.ID+" has no points"))
			return
		}
		pts := make([]hpm.Point, len(ob.Points))
		for j, xy := range ob.Points {
			pts[j] = hpm.Pt(xy[0], xy[1])
		}
		batch[i] = store.Observation{ID: ob.ID, Points: pts}
		points += len(pts)
	}
	if err := st.ObserveAllContext(r.Context(), batch); err != nil {
		writeError(w, err)
		return
	}
	ids := map[string]bool{}
	for _, ob := range batch {
		ids[ob.ID] = true
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"objects": len(ids),
		"points":  points,
	})
}

// predictionJSON is the wire form of one prediction.
type predictionJSON struct {
	X          float64     `json:"x"`
	Y          float64     `json:"y"`
	Source     string      `json:"source"`
	Path       string      `json:"path"`
	Score      float64     `json:"score"`
	Confidence float64     `json:"confidence"`
	Region     *regionJSON `json:"region,omitempty"`
}

type regionJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

func toJSON(p hpm.Prediction) predictionJSON {
	out := predictionJSON{
		X:          p.Location.X,
		Y:          p.Location.Y,
		Source:     p.Source.String(),
		Path:       p.Path.String(),
		Score:      p.Score,
		Confidence: p.Confidence,
	}
	// Pattern and markov answers are region centers, so the region extent
	// is their natural uncertainty bound; motion answers have none.
	if p.Source == hpm.SourcePattern || p.Source == hpm.SourceMarkov {
		out.Region = &regionJSON{
			MinX: p.Extent.Min.X, MinY: p.Extent.Min.Y,
			MaxX: p.Extent.Max.X, MaxY: p.Extent.Max.Y,
		}
	}
	return out
}

func handlePredict(st *store.Store, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	k, err := intParam(q.Get("k"), "k", 1)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	tq, err := intParam(q.Get("tq"), "tq", -1)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	h, err := intParam(q.Get("horizon"), "horizon", -1)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	if h > 0 {
		now, err := st.Now(id)
		if err != nil {
			writeError(w, err)
			return
		}
		tq = now + h
	}
	if tq < 0 {
		writeJSON(w, http.StatusBadRequest, errBody("need tq or horizon"))
		return
	}
	preds, err := st.PredictContext(r.Context(), id, tq, k)
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]predictionJSON, len(preds))
	for i, p := range preds {
		out[i] = toJSON(p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tq": tq, "predictions": out})
}

// maxPredictBatch bounds one batch-predict request, mirroring the
// trajectory endpoint's range cap.
const maxPredictBatch = 10000

// predictBatchRequest is the batch body: absolute query times, or horizons
// relative to the object's current time (exactly one must be non-empty).
type predictBatchRequest struct {
	Tqs      []int `json:"tqs"`
	Horizons []int `json:"horizons"`
	K        int   `json:"k"`
}

// batchResultJSON pairs one query time with its ranked predictions.
type batchResultJSON struct {
	Tq          int              `json:"tq"`
	Predictions []predictionJSON `json:"predictions"`
}

func handlePredictBatch(st *store.Store, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req predictBatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObserveBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody("bad body: "+err.Error()))
		return
	}
	if (len(req.Tqs) == 0) == (len(req.Horizons) == 0) {
		writeJSON(w, http.StatusBadRequest, errBody("need exactly one of tqs or horizons"))
		return
	}
	tqs := req.Tqs
	if len(req.Horizons) > 0 {
		now, err := st.Now(id)
		if err != nil {
			writeError(w, err)
			return
		}
		tqs = make([]int, len(req.Horizons))
		for i, h := range req.Horizons {
			if h <= 0 {
				writeJSON(w, http.StatusBadRequest, errBody("horizons must be positive"))
				return
			}
			tqs[i] = now + h
		}
	}
	if len(tqs) > maxPredictBatch {
		writeJSON(w, http.StatusBadRequest, errBody("batch too large"))
		return
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	batches, err := st.PredictBatchContext(r.Context(), id, tqs, k)
	if err != nil {
		writeError(w, err)
		return
	}
	results := make([]batchResultJSON, len(batches))
	for i, preds := range batches {
		out := make([]predictionJSON, len(preds))
		for j, p := range preds {
			out[j] = toJSON(p)
		}
		results[i] = batchResultJSON{Tq: tqs[i], Predictions: out}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func handleTrajectory(st *store.Store, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	from, err := intParam(q.Get("from"), "from", -1)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	to, err := intParam(q.Get("to"), "to", -1)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody(err.Error()))
		return
	}
	if from < 0 || to < from {
		writeJSON(w, http.StatusBadRequest, errBody("need from <= to"))
		return
	}
	if to-from > 10000 {
		writeJSON(w, http.StatusBadRequest, errBody("range too large"))
		return
	}
	preds, err := st.PredictRangeContext(r.Context(), id, from, to)
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]predictionJSON, len(preds))
	for i, p := range preds {
		out[i] = toJSON(p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"from": from, "to": to, "predictions": out})
}

// intParam parses a numeric query parameter: absent means the default,
// malformed is an error the handler turns into a 400 (silently treating
// ?tq=abc like a missing tq hid client bugs).
func intParam(s, name string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("malformed %s=%q: want an integer", name, s)
	}
	return v, nil
}

func errBody(msg string) map[string]string { return map[string]string{"error": msg} }

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, store.ErrUnknownObject):
		status = http.StatusNotFound
	case errors.Is(err, store.ErrUntrained):
		status = http.StatusConflict
	case errors.Is(err, store.ErrInvalidPoint):
		status = http.StatusBadRequest
	case errors.Is(err, store.ErrNoFleetIndex):
		status = http.StatusNotImplemented
	case errors.Is(err, store.ErrDegraded):
		// Read-only mode: the write was refused, nothing was recorded.
		// Retry-After because the store auto-recovers once the disk heals.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request's deadline expired (or the client left) before the
		// store finished; for observes this is pre-acknowledgment only, so
		// retrying is safe.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	default:
		// Invalid query times and similar caller mistakes read as 400s.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errBody(err.Error()))
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode error here means the
	// client went away, which needs no handling.
	_ = json.NewEncoder(w).Encode(body)
}
