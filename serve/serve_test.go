package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hpm"
	"hpm/store"
)

const period = 60

func testServer(t *testing.T) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.New(store.Options{
		Config:          hpm.Config{Period: period},
		MinTrainPeriods: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(st))
	t.Cleanup(srv.Close)
	return srv, st
}

func observeBody(t *testing.T, pts []hpm.Point) *bytes.Buffer {
	t.Helper()
	pairs := make([][2]float64, len(pts))
	for i, p := range pts {
		pairs[i] = [2]float64{p.X, p.Y}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(map[string]any{"points": pairs}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// getFlush drains the store's background trains through the HTTP API.
func getFlush(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /flush: status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

func TestObserveAndPredictEndToEnd(t *testing.T) {
	srv, _ := testServer(t)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 1)
	spec.Period = period
	spec.SubTrajectories = 5
	tr := hpm.GenerateDataset(spec)

	resp, err := http.Post(srv.URL+"/objects/bus-7/observe", "application/json",
		observeBody(t, tr.Points()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d", resp.StatusCode)
	}
	var ob map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ob); err != nil {
		t.Fatal(err)
	}
	now := int(ob["now"].(float64))
	if now != tr.Len()-1 {
		t.Fatalf("now = %d, want %d", now, tr.Len()-1)
	}

	// Training runs in the background; drain it before asserting on the
	// model.
	flush := getFlush(t, srv.URL)
	if flush["flushed"] != true {
		t.Fatalf("flush = %v", flush)
	}

	// List.
	list := getJSON(t, srv.URL+"/objects", http.StatusOK)
	objs := list["objects"].([]any)
	if len(objs) != 1 || objs[0] != "bus-7" {
		t.Fatalf("objects = %v", objs)
	}

	// Stats.
	stats := getJSON(t, srv.URL+"/objects/bus-7/stats", http.StatusOK)
	if stats["Trained"] != true || stats["Patterns"].(float64) == 0 {
		t.Fatalf("stats = %v", stats)
	}

	// Predict by horizon.
	pred := getJSON(t, fmt.Sprintf("%s/objects/bus-7/predict?horizon=20&k=2", srv.URL), http.StatusOK)
	preds := pred["predictions"].([]any)
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	first := preds[0].(map[string]any)
	if first["source"] != "pattern" && first["source"] != "motion" && first["source"] != "markov" {
		t.Errorf("source = %v", first["source"])
	}
	if (first["source"] == "pattern" || first["source"] == "markov") && first["region"] == nil {
		t.Errorf("%v prediction missing region extent", first["source"])
	}

	// Predict by absolute tq.
	pred = getJSON(t, fmt.Sprintf("%s/objects/bus-7/predict?tq=%d", srv.URL, now+10), http.StatusOK)
	if int(pred["tq"].(float64)) != now+10 {
		t.Errorf("tq echo = %v", pred["tq"])
	}

	// Trajectory range.
	traj := getJSON(t, fmt.Sprintf("%s/objects/bus-7/trajectory?from=%d&to=%d", srv.URL, now+1, now+10), http.StatusOK)
	if got := len(traj["predictions"].([]any)); got != 10 {
		t.Errorf("trajectory returned %d points, want 10", got)
	}
}

func TestErrorStatuses(t *testing.T) {
	srv, st := testServer(t)

	// Unknown object: 404.
	getJSON(t, srv.URL+"/objects/ghost/predict?tq=10", http.StatusNotFound)
	getJSON(t, srv.URL+"/objects/ghost/stats", http.StatusNotFound)

	// Known but untrained: 409.
	if err := st.Observe("young", hpm.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+"/objects/young/predict?tq=10", http.StatusConflict)

	// Missing parameters: 400.
	getJSON(t, srv.URL+"/objects/young/predict", http.StatusBadRequest)
	getJSON(t, srv.URL+"/objects/young/trajectory?from=9&to=3", http.StatusBadRequest)
	getJSON(t, srv.URL+"/objects/young/trajectory?from=1&to=999999", http.StatusBadRequest)

	// Bad observe bodies: 400.
	for _, body := range []string{"", "{}", `{"points": []}`, `{"nope": 1}`, "not json"} {
		resp, err := http.Post(srv.URL+"/objects/x/observe", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Query time in the past: 400.
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 2)
	spec.Period = period
	spec.SubTrajectories = 4
	tr := hpm.GenerateDataset(spec)
	if err := st.ObserveBatch("bike", tr.Points()); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+"/objects/bike/predict?tq=5", http.StatusBadRequest)
}

func TestObserveBodyLimit(t *testing.T) {
	srv, _ := testServer(t)
	huge := bytes.NewBuffer(make([]byte, 0, maxObserveBody+1024))
	huge.WriteString(`{"points": [`)
	for i := 0; huge.Len() < maxObserveBody+512; i++ {
		if i > 0 {
			huge.WriteString(",")
		}
		huge.WriteString("[1.0,2.0]")
	}
	huge.WriteString("]}")
	resp, err := http.Post(srv.URL+"/objects/big/observe", "application/json", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

func TestMalformedNumericParamsAre400(t *testing.T) {
	srv, st := testServer(t)
	if err := st.Observe("bus", hpm.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	for _, url := range []string{
		"/objects/bus/predict?tq=abc",
		"/objects/bus/predict?tq=12&k=two",
		"/objects/bus/predict?horizon=1.5",
		"/objects/bus/trajectory?from=abc&to=10",
		"/objects/bus/trajectory?from=1&to=xyz",
	} {
		body := getJSON(t, srv.URL+url, http.StatusBadRequest)
		if body["error"] == nil || body["error"] == "" {
			t.Errorf("%s: no error message in %v", url, body)
		}
	}
}

func TestObserveRejectsNonFinitePoints(t *testing.T) {
	srv, st := testServer(t)
	for _, body := range []string{
		`{"points": [[1, 2], [NaN, 3]]}`, // invalid JSON too, still 400
		`{"points": [[1e999, 2]]}`,       // overflows to +Inf
		`{"points": [[1, -1e999]]}`,      // overflows to -Inf
	} {
		resp, err := http.Post(srv.URL+"/objects/bus/observe", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if len(st.Objects()) != 0 {
		t.Errorf("rejected observes created objects: %v", st.Objects())
	}
}

func TestHealthEndpoints(t *testing.T) {
	srv, st := testServer(t)
	health := getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if health["ok"] != true {
		t.Fatalf("healthz = %v", health)
	}

	ready := getJSON(t, srv.URL+"/readyz", http.StatusOK)
	if ready["ready"] != true {
		t.Fatalf("readyz = %v", ready)
	}
	h := ready["health"].(map[string]any)
	if h["closed"] != false || h["durable"] != false { // testServer is in-memory
		t.Fatalf("health body = %v", h)
	}
	if _, ok := h["trainFailures"]; !ok {
		t.Fatalf("health body missing train-failure summary: %v", h)
	}

	// After Close the store stops training: readiness flips to 503 so a
	// balancer drains the instance during shutdown.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	notReady := getJSON(t, srv.URL+"/readyz", http.StatusServiceUnavailable)
	if notReady["ready"] != false {
		t.Fatalf("readyz after close = %v", notReady)
	}
	// Liveness is unaffected.
	getJSON(t, srv.URL+"/healthz", http.StatusOK)
}
