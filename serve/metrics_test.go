package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"hpm"
)

// parseProm parses a Prometheus 0.0.4 text exposition into a map keyed by
// the full series (name plus label set, exactly as rendered). Comment and
// blank lines are skipped; any other malformed line fails the test, which
// is the "parseable" acceptance check.
func parseProm(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumPrefix sums every series whose key starts with prefix.
func sumPrefix(m map[string]float64, prefix string) float64 {
	var s float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			s += v
		}
	}
	return s
}

func TestMetricsEndToEnd(t *testing.T) {
	srv, st := testServer(t)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 1)
	spec.Period = period
	spec.SubTrajectories = 6
	tr := hpm.GenerateDataset(spec)
	if err := st.ObserveBatch("bus-7", tr.Slice(0, 4*period)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// Serve one near and one distant prediction, then deliver the period
	// that contains their ground truth: the eval counters must move.
	getJSON(t, srv.URL+"/objects/bus-7/predict?horizon=5", http.StatusOK)
	getJSON(t, srv.URL+"/objects/bus-7/predict?horizon=60", http.StatusOK)
	resp, err := http.Post(srv.URL+"/objects/bus-7/observe", "application/json",
		observeBody(t, tr.Slice(4*period, 5*period)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	m := parseProm(t, mresp.Body)

	if m["hpm_objects"] != 1 || m["hpm_objects_trained"] != 1 {
		t.Errorf("fleet gauges: objects=%v trained=%v", m["hpm_objects"], m["hpm_objects_trained"])
	}
	if m["hpm_eval_recorded_total"] != 2 || m["hpm_eval_scored_total"] != 2 {
		t.Errorf("eval totals: recorded=%v scored=%v", m["hpm_eval_recorded_total"], m["hpm_eval_scored_total"])
	}
	if got := sumPrefix(m, "hpm_eval_attempts_total{"); got != 2 {
		t.Errorf("summed attempt cells = %v, want 2", got)
	}
	if got := sumPrefix(m, "hpm_queries_total{"); got < 2 {
		t.Errorf("summed query paths = %v, want >= 2", got)
	}

	// The full horizon × path matrix is always exported, zeros included,
	// so scrapes get a stable series set.
	cfg := st.EvalConfig()
	for _, path := range []string{"forward", "backward", "fallback"} {
		for i := 0; i < cfg.NumBuckets(); i++ {
			key := fmt.Sprintf("hpm_eval_attempts_total{horizon_le=%q,path=%q}", cfg.BucketLabel(i), path)
			if _, ok := m[key]; !ok {
				t.Fatalf("missing matrix cell %s", key)
			}
		}
	}

	// A specific bucket that must have moved: the horizon-5 prediction
	// landed in the first bucket under whichever path answered it.
	near := fmt.Sprintf("hpm_eval_attempts_total{horizon_le=%q,", cfg.BucketLabel(cfg.Bucket(5)))
	if got := sumPrefix(m, near); got != 1 {
		t.Errorf("near bucket attempts = %v, want 1", got)
	}
}

func TestFleetStatsEndpoint(t *testing.T) {
	srv, st := testServer(t)
	if err := st.Observe("solo", hpm.Pt(1, 2)); err != nil {
		t.Fatal(err)
	}
	body := getJSON(t, srv.URL+"/stats", http.StatusOK)
	if body["objects"].(float64) != 1 {
		t.Errorf("objects = %v", body["objects"])
	}
	for _, key := range []string{"trained", "pendingTrains", "trainFailures", "driftRetrains", "WAL", "Queries", "Eval"} {
		if _, ok := body[key]; !ok {
			t.Errorf("fleet stats missing %q: %v", key, body)
		}
	}
	ev := body["Eval"].(map[string]any)
	if _, ok := ev["cells"]; !ok {
		t.Errorf("fleet eval summary missing cells: %v", ev)
	}
}

func TestObjectEvalEndpoint(t *testing.T) {
	srv, st := testServer(t)
	getJSON(t, srv.URL+"/objects/ghost/eval", http.StatusNotFound)

	if err := st.Observe("bus", hpm.Pt(1, 2)); err != nil {
		t.Fatal(err)
	}
	body := getJSON(t, srv.URL+"/objects/bus/eval", http.StatusOK)
	if body["recorded"].(float64) != 0 {
		t.Errorf("fresh object recorded = %v", body["recorded"])
	}
	if len(body["cells"].([]any)) == 0 {
		t.Error("eval summary has no cells")
	}
}

// TestBulkObserveErrorPaths covers the fleet-ingest endpoint's 400s: the
// handler must reject malformed JSON and half-formed observations without
// creating objects.
func TestBulkObserveErrorPaths(t *testing.T) {
	srv, st := testServer(t)
	for _, body := range []string{
		"",
		"not json",
		`{"id": "a"}`, // object, not array
		`[]`,
		`[{"points": [[1, 2]]}]`,                // missing id
		`[{"id": "a", "points": []}]`,           // no points
		`[{"id": "a", "nope": 1}]`,              // unknown field
		`[{"id": "a", "points": [[1e999, 2]]}]`, // overflows float64
		`[{"id": "a", "points": [[1, 2]]}`,      // truncated
	} {
		resp, err := http.Post(srv.URL+"/observe", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if len(st.Objects()) != 0 {
		t.Errorf("rejected bulk observes created objects: %v", st.Objects())
	}
}

// TestPredictBatchErrorPaths covers the batch-predict endpoint's error
// statuses: malformed bodies 400, unknown objects 404.
func TestPredictBatchErrorPaths(t *testing.T) {
	srv, st := testServer(t)
	post := func(id, body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/objects/"+id+"/predict", "application/json",
			bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, body := range []string{
		"",
		"not json",
		`{"tqs": "abc"}`,
		`{"nope": [1]}`,
		`{}`,                            // neither tqs nor horizons
		`{"tqs": [1], "horizons": [2]}`, // both
	} {
		if got := post("ghost", body); got != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, got)
		}
	}

	// Non-positive horizons need a known object to get past Now: 400.
	if err := st.Observe("bus", hpm.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := post("bus", `{"horizons": [0]}`); got != http.StatusBadRequest {
		t.Errorf("horizon 0: status %d, want 400", got)
	}

	// Well-formed body, unknown object: 404 via both addressing modes.
	if got := post("ghost", `{"tqs": [10]}`); got != http.StatusNotFound {
		t.Errorf("unknown object tqs: status %d, want 404", got)
	}
	if got := post("ghost", `{"horizons": [10]}`); got != http.StatusNotFound {
		t.Errorf("unknown object horizons: status %d, want 404", got)
	}
	if got := st.Objects(); len(got) != 1 || got[0] != "bus" {
		t.Errorf("predict created objects: %v", got)
	}
}
