package serve

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hpm"
	"hpm/internal/faultinject"
	"hpm/internal/spatial"
	"hpm/store"
)

// durableServer spins up the HTTP layer over a durable store with the
// given admission limits, for tests that need WAL fault points.
func durableServer(t *testing.T, opts store.Options, lim Limits) (*httptest.Server, *store.Store) {
	t.Helper()
	if opts.Config.Period == 0 {
		opts.Config.Period = period
	}
	if opts.MinTrainPeriods == 0 {
		opts.MinTrainPeriods = 3
	}
	opts.WALNoSync = true
	st, err := store.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(st, lim))
	t.Cleanup(srv.Close)
	return srv, st
}

// postObserve sends one single-point observe and returns the response
// status plus the Retry-After header (empty when absent).
func postObserve(t *testing.T, base, id string) (status int, retryAfter string) {
	t.Helper()
	resp, err := http.Post(base+"/objects/"+id+"/observe", "application/json",
		strings.NewReader(`{"points": [[1, 2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// metricsBody scrapes /metrics as text.
func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAdmissionShedsWritesNotReads floods the write class past its
// concurrency slice while the WAL is slow: the overflow is shed fast with
// 429 + Retry-After instead of queueing without bound, and reads keep
// their own lane the whole time.
func TestAdmissionShedsWritesNotReads(t *testing.T) {
	srv, st := durableServer(t, store.Options{}, Limits{MaxInflight: 2})
	// Priority policy: writes get MaxInflight/2 = 1 slot, 1 queue seat.
	st.SetFaultHook(faultinject.DelayN(faultinject.OpWALAppend, -1, 500*time.Millisecond))

	const writers = 6
	statuses := make([]int, writers)
	retries := make([]string, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], retries[i] = postObserve(t, srv.URL, "bus-1")
		}(i)
	}

	// While the write lane is saturated, reads still answer immediately.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	getJSON(t, srv.URL+"/objects", http.StatusOK)
	if d := time.Since(start); d > 400*time.Millisecond {
		t.Errorf("read stalled %v behind the write flood", d)
	}
	wg.Wait()

	oks, sheds := 0, 0
	for i, s := range statuses {
		switch s {
		case http.StatusOK:
			oks++
		case http.StatusTooManyRequests:
			sheds++
			if retries[i] != "1" {
				t.Errorf("shed response %d missing Retry-After: %q", i, retries[i])
			}
		default:
			t.Errorf("observe %d: unexpected status %d", i, s)
		}
	}
	// One slot + one queue seat: at most two writes can ever succeed.
	if oks > 2 {
		t.Errorf("%d writes succeeded through a 1-slot/1-seat lane", oks)
	}
	if sheds < 3 {
		t.Errorf("only %d of %d flooding writes were shed", sheds, writers)
	}
	if m := metricsBody(t, srv.URL); !strings.Contains(m, `hpm_shed_total{endpoint="observe",reason="queue_full"}`) {
		t.Error("shed counter series missing from /metrics")
	}
}

// TestAdmissionDeadlineWhileQueued: a request whose deadline expires while
// waiting for a slot is answered 503 + Retry-After, not left hanging.
func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	srv, st := durableServer(t, store.Options{}, Limits{
		MaxInflight:    2, // write slice = 1
		RequestTimeout: 100 * time.Millisecond,
	})
	st.SetFaultHook(faultinject.DelayN(faultinject.OpWALAppend, -1, 500*time.Millisecond))

	results := make([]int, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, retry := postObserve(t, srv.URL, "bus-1")
			results[i] = status
			if status == http.StatusServiceUnavailable && retry != "1" {
				t.Errorf("deadline shed missing Retry-After: %q", retry)
			}
		}(i)
	}
	wg.Wait()
	// One holds the slot through the slow WAL and succeeds; the other's
	// 100ms deadline expires long before the 500ms slot frees up.
	got := map[int]int{}
	for _, s := range results {
		got[s]++
	}
	if got[http.StatusOK] != 1 || got[http.StatusServiceUnavailable] != 1 {
		t.Errorf("statuses = %v, want one 200 and one 503", results)
	}
}

// TestDegradedServeReadOnly is the HTTP-level degradation smoke: a full
// disk flips writes to 503 + Retry-After while fleet queries, health and
// metrics keep answering; healing the disk recovers automatically.
func TestDegradedServeReadOnly(t *testing.T) {
	srv, st := durableServer(t, store.Options{
		FleetIndex:    &spatial.Config{CellSize: 50},
		DegradeAfter:  1,
		ProbeInterval: 5 * time.Millisecond,
	}, Limits{})
	feedDataset(t, st, "bike-1", 1, 5)

	st.SetFaultHook(faultinject.FailN(faultinject.OpDiskFull, 1<<30, syscall.ENOSPC))
	status, retry := postObserve(t, srv.URL, "bike-1")
	if status != http.StatusServiceUnavailable || retry != "1" {
		t.Fatalf("observe on full disk: status %d, Retry-After %q; want 503 + 1", status, retry)
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after ENOSPC")
	}

	// Reads ride through: fleet queries, predictions, stats.
	body := getJSON(t, srv.URL+"/query/range?minx=-100000&miny=-100000&maxx=100000&maxy=100000&horizon=10", http.StatusOK)
	if results, ok := body["results"].([]any); !ok || len(results) != 1 {
		t.Errorf("degraded range query results = %v", body["results"])
	}
	getJSON(t, srv.URL+"/objects/bike-1/stats", http.StatusOK)

	// Orchestrator view: not ready (route writes away), but alive
	// (restarting the process would not fix the disk).
	getJSON(t, srv.URL+"/readyz", http.StatusServiceUnavailable)
	getJSON(t, srv.URL+"/healthz", http.StatusOK)
	if m := metricsBody(t, srv.URL); !strings.Contains(m, "hpm_degraded 1") {
		t.Error("hpm_degraded gauge not raised")
	}

	// Heal the disk; the probe recovers the store without intervention.
	st.SetFaultHook(nil)
	deadline := time.Now().Add(10 * time.Second)
	for st.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("store never recovered; health %+v", st.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	getJSON(t, srv.URL+"/readyz", http.StatusOK)
	if status, _ := postObserve(t, srv.URL, "bike-1"); status != http.StatusOK {
		t.Errorf("observe after recovery: status %d", status)
	}
	if m := metricsBody(t, srv.URL); !strings.Contains(m, "hpm_recoveries_total 1") {
		t.Error("hpm_recoveries_total not incremented")
	}
}

// TestSubscriberCapSheds caps live SSE streams: healthy subscribers hold
// their slots, the overflow client is shed with 429, and a slot freed by a
// disconnect is reusable.
func TestSubscriberCapSheds(t *testing.T) {
	st, err := store.New(store.Options{
		Config:          hpm.Config{Period: period},
		MinTrainPeriods: 3,
		FleetIndex:      &spatial.Config{CellSize: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(st, Limits{MaxSubscribers: 2}))
	t.Cleanup(srv.Close)
	feedDataset(t, st, "bike-1", 1, 5)

	subURL := srv.URL + "/subscribe?minx=-100000&miny=-100000&maxx=100000&maxy=100000&horizon=10&interval_ms=25"
	open := func() *http.Response {
		t.Helper()
		resp, err := http.Get(subURL)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	s1, s2 := open(), open()
	defer s1.Body.Close()
	defer s2.Body.Close()
	if s1.StatusCode != http.StatusOK || s2.StatusCode != http.StatusOK {
		t.Fatalf("streams: %d, %d", s1.StatusCode, s2.StatusCode)
	}
	// Both streams are live and keeping up (events flowing), so the third
	// client is the one shed.
	sseEvent(t, bufio.NewReader(s1.Body))
	sseEvent(t, bufio.NewReader(s2.Body))
	s3 := open()
	io.Copy(io.Discard, s3.Body)
	s3.Body.Close()
	if s3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third subscriber: status %d, want 429", s3.StatusCode)
	}
	if s3.Header.Get("Retry-After") != "1" {
		t.Errorf("shed subscriber missing Retry-After: %q", s3.Header.Get("Retry-After"))
	}
	if m := metricsBody(t, srv.URL); !strings.Contains(m, "hpm_subscribers 2") {
		t.Error("hpm_subscribers gauge != 2 with two live streams")
	}

	// Disconnect one; within an interval the slot frees and a newcomer fits.
	s1.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(metricsBody(t, srv.URL), "hpm_subscribers 1") {
		if time.Now().After(deadline) {
			t.Fatal("subscriber slot never freed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s4 := open()
	defer s4.Body.Close()
	if s4.StatusCode != http.StatusOK {
		t.Errorf("subscriber after freed slot: status %d", s4.StatusCode)
	}
}

// TestSubscriberTableEviction unit-tests the eviction policy: a full table
// evicts the subscriber most behind on its write deadline, and sheds the
// newcomer only when every stream is keeping up.
func TestSubscriberTableEviction(t *testing.T) {
	tbl := newSubscriberTable(2)
	ctx1, cancel1 := context.WithCancel(context.Background())
	h1, ok := tbl.add(cancel1, time.Now().Add(-time.Minute)) // overdue
	if !ok {
		t.Fatal("first add refused")
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	if _, ok := tbl.add(cancel2, time.Now().Add(-time.Hour)); !ok { // most overdue
		t.Fatal("second add refused")
	}

	// Full table, one stream an hour behind: that one goes.
	ctx3, cancel3 := context.WithCancel(context.Background())
	h3, ok := tbl.add(cancel3, time.Now().Add(time.Minute))
	if !ok {
		t.Fatal("add with an overdue evictee available was refused")
	}
	select {
	case <-ctx2.Done():
	case <-time.After(time.Second):
		t.Fatal("most-overdue subscriber was not cancelled")
	}
	if ctx1.Err() != nil || ctx3.Err() != nil {
		t.Fatal("wrong subscriber evicted")
	}
	if tbl.count() != 2 {
		t.Fatalf("count = %d, want 2", tbl.count())
	}

	// Catch stream 1 up; now everyone is healthy and newcomers are shed.
	tbl.touch(h1, time.Now().Add(time.Minute))
	if _, ok := tbl.add(func() {}, time.Now().Add(time.Minute)); ok {
		t.Fatal("newcomer admitted over a table of healthy subscribers")
	}
	if ctx1.Err() != nil || ctx3.Err() != nil {
		t.Fatal("healthy subscriber cancelled by a shed add")
	}

	// A freed slot admits again.
	tbl.remove(h3)
	if _, ok := tbl.add(func() {}, time.Now().Add(time.Minute)); !ok {
		t.Fatal("add refused after remove freed a slot")
	}
}
