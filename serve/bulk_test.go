package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"hpm"
)

// postRaw posts a body verbatim — for wire forms json.Encoder cannot
// produce, like malformed JSON or out-of-range numbers.
func postRaw(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBulkObserve(t *testing.T) {
	srv, st := testServer(t)
	body := []map[string]any{
		{"id": "bus-1", "points": [][2]float64{{1, 2}, {3, 4}}},
		{"id": "bus-2", "points": [][2]float64{{5, 6}}},
		{"id": "bus-1", "points": [][2]float64{{7, 8}}}, // repeated id merges in order
	}
	out := postJSON(t, srv.URL+"/observe", body, http.StatusOK)
	if out["objects"].(float64) != 2 || out["points"].(float64) != 4 {
		t.Fatalf("bulk observe response: %v", out)
	}
	for id, want := range map[string]int{"bus-1": 3, "bus-2": 1} {
		stats, err := st.Stats(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if stats.Points != want {
			t.Errorf("%s: %d points, want %d", id, stats.Points, want)
		}
	}
	// The repeated id's points landed in request order.
	now, _ := st.Now("bus-1")
	if now != 2 {
		t.Errorf("bus-1 now = %d, want 2", now)
	}
}

func TestBulkObserveRejectsBadBodies(t *testing.T) {
	srv, st := testServer(t)
	for name, body := range map[string]string{
		"not json":    "nope",
		"empty array": "[]",
		"missing id":  `[{"points": [[1, 2]]}]`,
		"no points":   `[{"id": "x"}]`,
		// 1e999 overflows float64 at decode time; JSON itself cannot
		// carry NaN/Inf, so this is the closest non-finite wire form.
		"inf point":   `[{"id": "x", "points": [[1e999, 2]]}]`,
		"unknown key": `[{"id": "x", "points": [[1, 2]], "bogus": 1}]`,
	} {
		if out := postRaw(t, srv.URL+"/observe", body, http.StatusBadRequest); out["error"] == "" {
			t.Errorf("%s: no error in body: %v", name, out)
		}
	}
	if len(st.Objects()) != 0 {
		t.Errorf("rejected bulk observes created objects: %v", st.Objects())
	}
}

func TestBulkObserveTrains(t *testing.T) {
	srv, st := testServer(t)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 3)
	spec.Period = period
	spec.SubTrajectories = 3
	pts := hpm.GenerateDataset(spec).Points()
	pairs := make([][2]float64, len(pts))
	for i, p := range pts {
		pairs[i] = [2]float64{p.X, p.Y}
	}
	postJSON(t, srv.URL+"/observe", []map[string]any{
		{"id": "bike", "points": pairs},
	}, http.StatusOK)
	getFlush(t, srv.URL)
	stats, err := st.Stats("bike")
	if err != nil || !stats.Trained {
		t.Fatalf("bulk-ingested object not trained: %+v (err %v)", stats, err)
	}
}
