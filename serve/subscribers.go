package serve

import (
	"context"
	"sync"
	"time"
)

// SSE subscriber registry. Streams are long-lived, so they are governed
// by a population cap rather than the request limiters: when the table is
// full, the subscriber most behind on its per-event write deadline — the
// stalled or dead client that is already holding a connection hostage —
// is evicted to make room, and only if every current subscriber is
// keeping up is the newcomer shed instead.

// subscriber is one live SSE stream: its cancel tears the stream down,
// and due is the unix-nano instant by which its next event write must
// have completed (pushed forward before every write, mirroring the write
// deadline the stream sets). A due in the past means the client is
// missing deadlines right now.
type subscriber struct {
	cancel context.CancelFunc
	due    int64
}

// subscriberTable tracks live streams up to a cap.
type subscriberTable struct {
	mu   sync.Mutex
	cap  int
	next int // handle allocator
	subs map[int]*subscriber
}

func newSubscriberTable(capacity int) *subscriberTable {
	return &subscriberTable{cap: capacity, subs: map[int]*subscriber{}}
}

// add registers a stream, evicting the most-overdue subscriber if the
// table is full and someone is overdue. It returns a handle to remove on
// stream end, or ok=false when the table is full of healthy clients (the
// caller sheds the new stream with 429).
func (t *subscriberTable) add(cancel context.CancelFunc, due time.Time) (handle int, ok bool) {
	t.mu.Lock()
	var evict *subscriber
	if len(t.subs) >= t.cap {
		now := time.Now().UnixNano()
		oldest, oldestDue := -1, now
		for h, sub := range t.subs {
			if sub.due < oldestDue {
				oldest, oldestDue = h, sub.due
			}
		}
		if oldest < 0 {
			t.mu.Unlock()
			return 0, false // everyone is meeting deadlines; shed the newcomer
		}
		evict = t.subs[oldest]
		delete(t.subs, oldest)
	}
	t.next++
	handle = t.next
	t.subs[handle] = &subscriber{cancel: cancel, due: due.UnixNano()}
	t.mu.Unlock()
	if evict != nil {
		evict.cancel() // outside the lock: cancel wakes the stream goroutine
	}
	return handle, true
}

// touch pushes a stream's write deadline forward before an event write.
func (t *subscriberTable) touch(handle int, due time.Time) {
	t.mu.Lock()
	if sub := t.subs[handle]; sub != nil {
		sub.due = due.UnixNano()
	}
	t.mu.Unlock()
}

// remove deregisters a finished stream.
func (t *subscriberTable) remove(handle int) {
	t.mu.Lock()
	delete(t.subs, handle)
	t.mu.Unlock()
}

// count returns the live-stream population, for the hpm_subscribers gauge.
func (t *subscriberTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}
