package serve

import (
	"net/http"

	"hpm/store"
)

// Health endpoints for orchestrators:
//
//	GET /healthz   liveness — the process answers HTTP
//	GET /readyz    readiness — the store accepts work; body carries the
//	               durability recovery summary (snapshot restored, WAL
//	               records replayed), pending background trains, and the
//	               bounded train-error ring so a probe can alarm on a
//	               fleet whose models are quietly failing to refresh.
//
// readyz answers 503 once the store is closed (shutdown in progress), so
// load balancers drain before the final checkpoint runs — and while the
// store is degraded read-only, so write traffic routes away from a node
// whose disk is refusing WAL commits. healthz stays 200 through a
// degrade: the process is alive and still answering reads, and restarting
// it would not fix the disk.

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func handleReadyz(st *store.Store, w http.ResponseWriter, r *http.Request) {
	h := st.Health()
	ready := !h.Closed && !h.Degraded
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "health": h})
}
