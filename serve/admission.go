package serve

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hpm/internal/faultinject"
	"hpm/store"
)

// Admission control. Every request passes a guard before its handler
// runs: an optional per-request deadline (threaded as context.Context
// down into the store), a per-class concurrency limit with a small
// bounded wait queue, and shed accounting. Under overload the server
// answers 429 (wait queue full) or 503 (deadline expired while queued)
// with Retry-After — callers get a fast, honest "come back later" instead
// of a connection that queues without bound and times out anyway.
//
// Requests are classed by what they cost the store: reads (predictions,
// fleet queries, stats) outrank writes (observes, remove) outrank control
// work (flush, which waits on the training pool). Under the "priority"
// policy each class gets a shrinking slice of MaxInflight, so a write
// flood cannot starve reads and a pile of flushes cannot starve either.
// The "fair" policy runs every class through one shared limiter.

// Request classes, ordered by priority.
const (
	classRead = iota
	classWrite
	classControl
	numClasses
)

// Limits configures the admission-control middleware. The zero value
// disables limiting and deadlines entirely (every field opt-in), matching
// the pre-admission behavior of Handler.
type Limits struct {
	// MaxInflight caps concurrently executing requests. 0 disables
	// concurrency limiting. Under the priority policy reads get the full
	// cap, writes half, control a quarter (each at least 1).
	MaxInflight int
	// RequestTimeout is the per-request deadline, threaded through the
	// request context into the store. 0 disables it. /subscribe streams
	// are exempt — they are long-lived by design and governed by
	// MaxSubscribers instead.
	RequestTimeout time.Duration
	// ShedPolicy is "priority" (default) or "fair"; see the class rules
	// above.
	ShedPolicy string
	// MaxSubscribers caps concurrent SSE subscribers; when full, the
	// client most behind on its write deadline is evicted first. 0 takes
	// DefaultMaxSubscribers; negative disables the cap.
	MaxSubscribers int
	// FaultHook, when set, is consulted with OpSlowClient at admission,
	// letting chaos tests stall a request while it holds (or waits for) a
	// concurrency slot.
	FaultHook faultinject.Hook
}

// DefaultMaxSubscribers bounds SSE subscribers when Limits leaves it 0.
const DefaultMaxSubscribers = 256

// queueDepthPerSlot sizes each limiter's bounded wait queue relative to
// its concurrency limit: a full queue means every slot has a waiter
// already lined up, so another arrival would only buy latency, not
// throughput — shed it instead.
const queueDepthPerSlot = 1

// server carries the handler set's shared state: the store, the
// per-class limiters, shed accounting, and the SSE subscriber table.
type server struct {
	st   *store.Store
	lim  Limits
	cls  [numClasses]*limiter // nil entries mean unlimited
	shed shedTable
	subs *subscriberTable
}

// limiter is a concurrency gate: a token channel of capacity `limit`
// plus a bounded count of waiters allowed to queue for one.
type limiter struct {
	tokens   chan struct{}
	maxQueue int32
	queued   atomic.Int32
}

func newLimiter(limit int) *limiter {
	l := &limiter{tokens: make(chan struct{}, limit), maxQueue: int32(limit * queueDepthPerSlot)}
	if l.maxQueue < 1 {
		l.maxQueue = 1
	}
	for i := 0; i < limit; i++ {
		l.tokens <- struct{}{}
	}
	return l
}

// acquire takes a token, queuing (bounded) when none is free. It returns
// a release func on success, or a shed reason: "queue_full" when the wait
// queue is at capacity, "deadline" when ctx expired while queued.
func (l *limiter) acquire(ctx context.Context) (release func(), reason string) {
	select {
	case <-l.tokens:
		return func() { l.tokens <- struct{}{} }, ""
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return nil, "queue_full"
	}
	defer l.queued.Add(-1)
	select {
	case <-l.tokens:
		return func() { l.tokens <- struct{}{} }, ""
	case <-ctx.Done():
		return nil, "deadline"
	}
}

// shedTable counts shed responses by {endpoint, reason} for /metrics.
type shedTable struct {
	mu sync.Mutex
	m  map[[2]string]uint64
}

func (t *shedTable) inc(endpoint, reason string) {
	t.mu.Lock()
	if t.m == nil {
		t.m = map[[2]string]uint64{}
	}
	t.m[[2]string{endpoint, reason}]++
	t.mu.Unlock()
}

// shedSample is one {endpoint, reason} count, for metrics rendering.
type shedSample struct {
	endpoint, reason string
	n                uint64
}

// snapshot returns the table's samples sorted by label, so the /metrics
// series order is stable across scrapes.
func (t *shedTable) snapshot() []shedSample {
	t.mu.Lock()
	out := make([]shedSample, 0, len(t.m))
	for k, n := range t.m {
		out = append(out, shedSample{endpoint: k[0], reason: k[1], n: n})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].endpoint != out[j].endpoint {
			return out[i].endpoint < out[j].endpoint
		}
		return out[i].reason < out[j].reason
	})
	return out
}

func (t *shedTable) total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, v := range t.m {
		n += v
	}
	return n
}

// newServer builds the shared state and its limiters from lim.
func newServer(st *store.Store, lim Limits) *server {
	s := &server{st: st, lim: lim}
	if lim.MaxSubscribers == 0 {
		lim.MaxSubscribers = DefaultMaxSubscribers
	}
	if lim.MaxSubscribers > 0 {
		s.subs = newSubscriberTable(lim.MaxSubscribers)
	}
	if lim.MaxInflight > 0 {
		if lim.ShedPolicy == "fair" {
			shared := newLimiter(lim.MaxInflight)
			for c := 0; c < numClasses; c++ {
				s.cls[c] = shared
			}
		} else {
			div := []int{1, 2, 4} // read, write, control
			for c := 0; c < numClasses; c++ {
				n := lim.MaxInflight / div[c]
				if n < 1 {
					n = 1
				}
				s.cls[c] = newLimiter(n)
			}
		}
	}
	return s
}

// guard wraps a handler with the admission ladder: slow-client fault
// point, request deadline, concurrency limit. endpoint labels the shed
// counter; class picks the limiter.
func (s *server) guard(endpoint string, class int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.lim.FaultHook != nil {
			_ = s.lim.FaultHook(faultinject.OpSlowClient)
		}
		if s.lim.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.lim.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if lim := s.cls[class]; lim != nil {
			release, reason := lim.acquire(r.Context())
			if release == nil {
				s.shedResponse(w, endpoint, reason)
				return
			}
			defer release()
		}
		h(w, r)
	}
}

// shedResponse answers a shed request: 429 for a full wait queue, 503
// for a deadline that expired while queued, both with Retry-After so
// well-behaved clients back off instead of hammering.
func (s *server) shedResponse(w http.ResponseWriter, endpoint, reason string) {
	s.shed.inc(endpoint, reason)
	status := http.StatusTooManyRequests
	if reason == "deadline" {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, status, errBody("overloaded ("+reason+"), retry later"))
}

// retryAfterSeconds is the Retry-After hint on shed and degraded
// responses: long enough to thin a stampede, short enough that a
// recovered server repopulates quickly.
const retryAfterSeconds = 1
