package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"hpm"
)

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPredictBatchEndpoint(t *testing.T) {
	srv, st := testServer(t)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 21)
	spec.Period = period
	spec.SubTrajectories = 4
	if err := st.ObserveBatch("bike", hpm.GenerateDataset(spec).Points()); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	now, _ := st.Now("bike")

	// Absolute times.
	body := postJSON(t, srv.URL+"/objects/bike/predict",
		map[string]any{"tqs": []int{now + 5, now + 80}, "k": 2}, http.StatusOK)
	results, ok := body["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("results = %v", body["results"])
	}
	first := results[0].(map[string]any)
	if int(first["tq"].(float64)) != now+5 {
		t.Errorf("first tq = %v, want %d", first["tq"], now+5)
	}
	if preds := first["predictions"].([]any); len(preds) == 0 {
		t.Error("no predictions for the near time")
	}

	// Horizons resolve against the object's current time.
	body = postJSON(t, srv.URL+"/objects/bike/predict",
		map[string]any{"horizons": []int{5, 80}}, http.StatusOK)
	results = body["results"].([]any)
	if got := int(results[1].(map[string]any)["tq"].(float64)); got != now+80 {
		t.Errorf("horizon tq = %d, want %d", got, now+80)
	}

	// The batch answers must agree with the store's direct batch API.
	direct, err := st.PredictBatch("bike", []int{now + 5, now + 80}, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotX := results[0].(map[string]any)["predictions"].([]any)[0].(map[string]any)["x"].(float64)
	if gotX != direct[0][0].Location.X {
		t.Errorf("endpoint x = %v, direct x = %v", gotX, direct[0][0].Location.X)
	}
}

func TestPredictBatchEndpointValidation(t *testing.T) {
	srv, st := testServer(t)
	spec := hpm.DefaultDatasetSpec(hpm.DatasetBike, 22)
	spec.Period = period
	spec.SubTrajectories = 4
	if err := st.ObserveBatch("bike", hpm.GenerateDataset(spec).Points()); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	url := srv.URL + "/objects/bike/predict"
	// Neither tqs nor horizons.
	postJSON(t, url, map[string]any{"k": 1}, http.StatusBadRequest)
	// Both tqs and horizons.
	postJSON(t, url, map[string]any{"tqs": []int{500}, "horizons": []int{5}}, http.StatusBadRequest)
	// Non-positive horizon.
	postJSON(t, url, map[string]any{"horizons": []int{0}}, http.StatusBadRequest)
	// Unknown object.
	postJSON(t, srv.URL+"/objects/ghost/predict", map[string]any{"tqs": []int{500}}, http.StatusNotFound)
	// Oversized batch.
	big := make([]int, 10001)
	now, _ := st.Now("bike")
	for i := range big {
		big[i] = now + 1 + i
	}
	postJSON(t, url, map[string]any{"tqs": big}, http.StatusBadRequest)
	// Untrained object: 409 like the GET endpoint.
	if err := st.Observe("fresh", hpm.Pt(0, 0)); err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/objects/fresh/predict", map[string]any{"tqs": []int{500}}, http.StatusConflict)
}
