module hpm

go 1.22
